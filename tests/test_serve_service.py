"""Tests for the asyncio rule service: protocol, backpressure, drain."""

import asyncio
import json
import random

import pytest

from repro.engine import LatencyHistogram
from repro.serve import (
    RuleBook,
    RuleIndex,
    RuleService,
    RuleServiceClient,
    ServiceError,
    replay_traffic,
)

from .test_serve_rulebook import random_rules


def make_index(seed=0, n_rules=50, n_items=20) -> RuleIndex:
    book = RuleBook(rules=random_rules(random.Random(seed), n_rules, n_items))
    return RuleIndex.from_rulebook(book)


class SlowService(RuleService):
    """Batch processing slowed down to force queue buildup in tests."""

    def __init__(self, *args, delay_s: float = 0.05, **kwargs):
        super().__init__(*args, **kwargs)
        self.delay_s = delay_s

    async def _process_batch(self, batch):
        await asyncio.sleep(self.delay_s)
        await super()._process_batch(batch)


def run(coro):
    return asyncio.run(coro)


class TestProtocol:
    def test_healthz_match_metrics(self):
        index = make_index()

        async def scenario():
            service = RuleService(index)
            await service.start(port=0)
            try:
                async with await RuleServiceClient.connect(
                    "127.0.0.1", service.port
                ) as client:
                    health = await client.healthz()
                    assert health["status"] == "ok"
                    assert health["n_rules"] == len(index)
                    assert health["uptime_s"] >= 0

                    transaction = [str(i) for i in index.rules[0].antecedent]
                    result = await client.match(transaction, explain=True)
                    assert result["type"] == "match_result"
                    assert any(m["rule_id"] == 0 for m in result["fired"])
                    assert "near_misses" in result

                    metrics = await client.metrics()
                    assert metrics["requests"]["matched"] == 1
                    assert metrics["latency"]["count"] == 1
                    assert metrics["queue_depth"] == 0
                    assert any(
                        count == 1 for count in metrics["rule_matches"].values()
                    )
            finally:
                await service.shutdown()

        run(scenario())

    def test_matches_agree_with_direct_index(self):
        index = make_index(seed=9)
        vocabulary = sorted(
            {str(i) for rule in index.rules for i in rule.antecedent}
        )
        rng = random.Random(17)
        transactions = [
            rng.sample(vocabulary, rng.randint(0, 8)) for _ in range(50)
        ]

        async def scenario():
            service = RuleService(index)
            await service.start(port=0)
            try:
                async with await RuleServiceClient.connect(
                    "127.0.0.1", service.port
                ) as client:
                    for transaction in transactions:
                        response = await client.match(transaction)
                        expected = [m.rule_id for m in index.match(transaction)]
                        got = [m["rule_id"] for m in response["fired"]]
                        assert got == expected
            finally:
                await service.shutdown()

        run(scenario())

    def test_bad_requests_rejected_not_fatal(self):
        async def scenario():
            service = RuleService(make_index())
            await service.start(port=0)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", service.port
                )
                for payload in (
                    b"not json\n",
                    b'{"type": "unknown"}\n',
                    b'{"type": "match", "transaction": "nope"}\n',
                    b'[1, 2]\n',
                ):
                    writer.write(payload)
                    await writer.drain()
                    response = json.loads(await reader.readline())
                    assert response["type"] == "error"
                    assert response["error"] == "bad_request"
                # the connection still works after every rejection
                writer.write(b'{"type": "healthz"}\n')
                await writer.drain()
                assert json.loads(await reader.readline())["status"] == "ok"
                writer.close()
                await writer.wait_closed()
                assert service.metrics.n_bad_requests == 4
            finally:
                await service.shutdown()

        run(scenario())

    def test_concurrent_clients_are_batched(self):
        index = make_index()
        transaction = [str(i) for i in index.rules[0].antecedent]

        async def one_client(port):
            async with await RuleServiceClient.connect("127.0.0.1", port) as c:
                return await c.match(transaction)

        async def scenario():
            # a slow batcher lets concurrent requests pile into one batch
            service = SlowService(make_index(), delay_s=0.05, max_batch=64)
            await service.start(port=0)
            try:
                results = await asyncio.gather(
                    *(one_client(service.port) for _ in range(16))
                )
                assert all(r["type"] == "match_result" for r in results)
                assert service.metrics.n_batches < 16  # batching happened
            finally:
                await service.shutdown()

        run(scenario())


class TestBatchKernel:
    def test_batched_requests_hit_kernel_and_agree_with_index(self):
        index = make_index(seed=21)
        vocabulary = sorted(
            {str(i) for rule in index.rules for i in rule.antecedent}
        )
        rng = random.Random(23)
        transactions = [
            rng.sample(vocabulary, rng.randint(0, 8)) for _ in range(16)
        ]

        async def one_client(port, transaction):
            async with await RuleServiceClient.connect("127.0.0.1", port) as c:
                return await c.match(transaction)

        async def scenario():
            # a slow batcher piles concurrent requests into shared
            # micro-batches, so the kernel path (>= 2 plain jobs) runs
            service = SlowService(index, delay_s=0.05, max_batch=64)
            await service.start(port=0)
            try:
                results = await asyncio.gather(
                    *(
                        one_client(service.port, t)
                        for t in transactions
                    )
                )
                for transaction, response in zip(transactions, results):
                    expected = [m.rule_id for m in index.match(transaction)]
                    got = [m["rule_id"] for m in response["fired"]]
                    assert got == expected
                metrics = service.metrics.as_dict(index)
                assert metrics["kernel"]["batches"] >= 1
                assert metrics["kernel"]["jobs"] >= 2
                assert metrics["kernel"]["seconds"] >= 0.0
                assert metrics["requests"]["matched"] == len(transactions)
            finally:
                await service.shutdown()

        run(scenario())

    def test_scalar_fallback_answers_identically(self):
        index = make_index(seed=21)
        transaction = [str(i) for i in index.rules[0].antecedent]

        async def one_client(port):
            async with await RuleServiceClient.connect("127.0.0.1", port) as c:
                return await c.match(transaction)

        async def scenario():
            service = SlowService(
                index, delay_s=0.05, max_batch=64, batch_kernel=False
            )
            await service.start(port=0)
            try:
                results = await asyncio.gather(
                    *(one_client(service.port) for _ in range(8))
                )
                expected = [m.rule_id for m in index.match(transaction)]
                for response in results:
                    assert [m["rule_id"] for m in response["fired"]] == expected
                metrics = service.metrics.as_dict(index)
                assert metrics["kernel"]["batches"] == 0
                assert metrics["kernel"]["jobs"] == 0
            finally:
                await service.shutdown()

        run(scenario())

    def test_no_batch_kernel_env_var_disables_kernel(self, monkeypatch):
        monkeypatch.setenv("REPRO_SERVE_NO_BATCH_KERNEL", "1")
        assert RuleService(make_index()).batch_kernel is False
        monkeypatch.delenv("REPRO_SERVE_NO_BATCH_KERNEL")
        assert RuleService(make_index()).batch_kernel is True

    def test_explain_requests_take_scalar_path(self):
        index = make_index(seed=21)
        transaction = [str(i) for i in index.rules[0].antecedent]

        async def scenario():
            service = RuleService(index)
            await service.start(port=0)
            try:
                async with await RuleServiceClient.connect(
                    "127.0.0.1", service.port
                ) as client:
                    result = await client.match(transaction, explain=True)
                    assert "near_misses" in result
                    assert service.metrics.n_kernel_batches == 0
            finally:
                await service.shutdown()

        run(scenario())

    def test_shard_aggregation_sums_kernel_sections(self):
        from repro.engine.stats import aggregate_shard_metrics

        index = make_index()
        shard_a = RuleService(index)
        shard_a.metrics.n_kernel_batches = 3
        shard_a.metrics.n_kernel_jobs = 40
        shard_a.metrics.kernel_seconds = 0.25
        shard_b = RuleService(index)
        shard_b.metrics.n_kernel_batches = 2
        shard_b.metrics.n_kernel_jobs = 10
        shard_b.metrics.kernel_seconds = 0.5
        merged = aggregate_shard_metrics(
            [shard_a.metrics.as_dict(index), shard_b.metrics.as_dict(index)]
        )
        assert merged["kernel"]["batches"] == 5
        assert merged["kernel"]["jobs"] == 50
        assert merged["kernel"]["seconds"] == pytest.approx(0.75)
        # pre-kernel shard payloads (rolling upgrade) still aggregate
        legacy = {"requests": {"matched": 1}}
        merged = aggregate_shard_metrics(
            [legacy, shard_a.metrics.as_dict(index)]
        )
        assert merged["kernel"]["batches"] == 3


class TestBackpressure:
    def test_overload_rejected_with_retry_after(self):
        async def scenario():
            service = SlowService(
                make_index(), delay_s=0.2, max_queue=2, max_batch=1,
                retry_after_s=0.123,
            )
            await service.start(port=0)
            try:
                async def one(port):
                    # max_retries=0: observe raw rejections instead of
                    # the client's built-in backoff-and-resend
                    async with await RuleServiceClient.connect(
                        "127.0.0.1", port, max_retries=0
                    ) as client:
                        try:
                            return await client.match(["X = 1"])
                        except ServiceError as exc:
                            return exc

                outcomes = await asyncio.gather(
                    *(one(service.port) for _ in range(10))
                )
                rejected = [o for o in outcomes if isinstance(o, ServiceError)]
                served = [o for o in outcomes if not isinstance(o, ServiceError)]
                assert rejected, "queue of 2 must shed some of 10 requests"
                assert served, "some requests must still be served"
                for exc in rejected:
                    assert exc.code == "overloaded"
                    assert exc.retry_after == pytest.approx(0.123)
                assert service.metrics.n_rejected == len(rejected)
            finally:
                await service.shutdown()

        run(scenario())

    def test_client_backoff_absorbs_overload(self):
        # regression: the client used to surface `overloaded` to the
        # caller; now it honours retry_after with bounded exponential
        # backoff, so every request against a deliberately tiny queue
        # eventually succeeds
        async def scenario():
            service = SlowService(
                make_index(), delay_s=0.02, max_queue=2, max_batch=1,
                retry_after_s=0.01,
            )
            await service.start(port=0)
            try:
                async def one(port):
                    async with await RuleServiceClient.connect(
                        "127.0.0.1", port, max_retries=50
                    ) as client:
                        result = await client.match(["X = 1"])
                        return result, client.n_retried

                outcomes = await asyncio.gather(
                    *(one(service.port) for _ in range(10))
                )
                assert all(
                    result["type"] == "match_result" for result, _ in outcomes
                )
                assert service.metrics.n_rejected > 0, (
                    "the tiny queue must have shed load for this test "
                    "to exercise the backoff path"
                )
                assert sum(retries for _, retries in outcomes) > 0
            finally:
                await service.shutdown()

        run(scenario())

    def test_client_backoff_budget_is_bounded(self):
        # a terminal error (bad_request has no retry_after) must raise
        # immediately, and an exhausted retry budget must surface the
        # last rejection rather than looping forever
        async def scenario():
            service = SlowService(
                make_index(), delay_s=0.5, max_queue=1, max_batch=1,
                retry_after_s=0.01,
            )
            await service.start(port=0)
            try:
                async with await RuleServiceClient.connect(
                    "127.0.0.1", service.port, max_retries=2
                ) as client:
                    with pytest.raises(ServiceError) as excinfo:
                        await client.request({"type": "nope"})
                    assert excinfo.value.code == "bad_request"
                    assert client.n_retried == 0

                # saturate the queue, then a bounded client must give up:
                # one request occupies the (slow) batcher, a second fills
                # the queue-of-one for the next ~0.5s
                saturators = [
                    await RuleServiceClient.connect("127.0.0.1", service.port)
                    for _ in range(2)
                ]
                await saturators[0].send(
                    {"type": "match", "transaction": ["X = 1"]}
                )
                await asyncio.sleep(0.05)  # batcher picks it up, sleeps
                await saturators[1].send(
                    {"type": "match", "transaction": ["X = 1"]}
                )
                await asyncio.sleep(0.02)
                try:
                    async with await RuleServiceClient.connect(
                        "127.0.0.1", service.port, max_retries=2,
                        backoff_cap_s=0.02,
                    ) as client:
                        with pytest.raises(ServiceError) as excinfo:
                            await client.match(["X = 1"])
                        assert excinfo.value.code == "overloaded"
                        assert client.n_retried == 2
                finally:
                    for saturator in saturators:
                        await saturator.close()
            finally:
                await service.shutdown()

        run(scenario())

    def test_replay_traffic_retries_through_backpressure(self):
        index = make_index()
        vocabulary = sorted(
            {str(i) for rule in index.rules for i in rule.antecedent}
        )
        rng = random.Random(5)
        transactions = [
            rng.sample(vocabulary, rng.randint(1, 6)) for _ in range(60)
        ]

        async def scenario():
            service = SlowService(
                index, delay_s=0.01, max_queue=4, max_batch=2
            )
            await service.start(port=0)
            try:
                stats = await replay_traffic(
                    "127.0.0.1",
                    service.port,
                    transactions,
                    concurrency=6,
                )
            finally:
                await service.shutdown()
            return stats

        stats = run(scenario())
        # every job eventually served: rejections were retried, not dropped
        assert stats.n_requests == len(transactions)
        assert stats.n_failed == 0
        assert stats.seconds > 0


class TestShutdown:
    def test_graceful_drain_answers_queued_requests(self):
        index = make_index()
        transaction = [str(i) for i in index.rules[0].antecedent]

        async def scenario():
            service = SlowService(index, delay_s=0.05, max_batch=1)
            await service.start(port=0)
            port = service.port

            async def one():
                async with await RuleServiceClient.connect("127.0.0.1", port) as c:
                    return await c.match(transaction)

            pending = [asyncio.create_task(one()) for _ in range(6)]
            # wait until every request is either queued or already answered
            # (a fixed sleep races with slow machines: a request arriving
            # after the drain starts is rejected, not drained)
            while service.metrics.n_matched + service._queue.qsize() < 6:
                await asyncio.sleep(0.005)
            await service.shutdown()
            results = await asyncio.gather(*pending)
            assert all(r["type"] == "match_result" for r in results)
            # fully stopped: new connections are refused
            with pytest.raises(OSError):
                await asyncio.open_connection("127.0.0.1", port)

        run(scenario())

    def test_restart_after_shutdown(self):
        async def scenario():
            service = RuleService(make_index())
            await service.start(port=0)
            await service.shutdown()
            await service.start(port=0)
            try:
                async with await RuleServiceClient.connect(
                    "127.0.0.1", service.port
                ) as client:
                    assert (await client.healthz())["status"] == "ok"
            finally:
                await service.shutdown()

        run(scenario())


class TestLatencyHistogram:
    def test_quantiles_bracket_samples(self):
        hist = LatencyHistogram()
        rng = random.Random(0)
        samples = [rng.uniform(1e-4, 1e-2) for _ in range(10_000)]
        for s in samples:
            hist.record(s)
        samples.sort()
        for q in (0.5, 0.9, 0.99):
            exact = samples[int(q * (len(samples) - 1))]
            approx = hist.quantile(q)
            # log-bucketed: within one bucket width (~9 %) of the truth
            assert exact / 1.2 <= approx <= exact * 1.2
        assert hist.quantile(0.0) >= min(samples) / 1.2
        assert hist.quantile(1.0) == pytest.approx(max(samples))

    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert len(hist) == 0
        assert hist.quantile(0.5) == 0.0
        assert hist.mean == 0.0
        assert hist.as_dict()["count"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_seconds=0)
        with pytest.raises(ValueError):
            LatencyHistogram(growth=1.0)
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)

    def test_overflow_and_clamp(self):
        hist = LatencyHistogram(max_seconds=1.0)
        hist.record(5.0)  # beyond the last bucket
        hist.record(-1.0)  # clamps to zero
        assert len(hist) == 2
        assert hist.quantile(1.0) == 5.0
        assert hist.as_dict()["min_s"] == 0.0

    def test_state_roundtrip_and_merge(self):
        rng = random.Random(7)
        left, right, everything = (
            LatencyHistogram(),
            LatencyHistogram(),
            LatencyHistogram(),
        )
        for _ in range(2000):
            sample = rng.uniform(1e-5, 1e-1)
            (left if rng.random() < 0.5 else right).record(sample)
            everything.record(sample)
        rebuilt = LatencyHistogram.from_state(
            json.loads(json.dumps(right.state_dict()))
        )
        merged = left.merge(rebuilt)  # in place, returns self
        assert merged is left
        assert len(left) == len(everything)
        # bucket-level merging is exact: identical counts, identical
        # quantiles — the property averaging per-shard p99s lacks
        merged_state = left.state_dict()
        exact_state = everything.state_dict()
        # summation order differs, so the mean is equal only up to fp error
        assert merged_state.pop("sum_s") == pytest.approx(
            exact_state.pop("sum_s")
        )
        assert merged_state == exact_state
        for q in (0.5, 0.9, 0.99):
            assert left.quantile(q) == everything.quantile(q)

    def test_merge_rejects_different_geometry(self):
        with pytest.raises(ValueError):
            LatencyHistogram().merge(LatencyHistogram(growth=2.0))
        state = LatencyHistogram().state_dict()
        state["counts"] = state["counts"][:-3]
        with pytest.raises(ValueError):
            LatencyHistogram.from_state(state)


class VersionRecordingService(SlowService):
    """White-box probe: the index version seen by each micro-batch."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.batch_versions: list[int] = []

    async def _process_batch(self, batch):
        self.batch_versions.append(self.version)
        await super()._process_batch(batch)


class TestHotSwap:
    def test_wire_reload_swaps_index(self, tmp_path):
        old_book = RuleBook(rules=random_rules(random.Random(0), 30, 20))
        new_book = RuleBook(rules=random_rules(random.Random(9), 45, 20))
        new_path = tmp_path / "new.rulebook.jsonl"
        new_book.save(new_path)

        async def scenario():
            service = RuleService.from_rulebook(old_book)
            await service.start(port=0)
            try:
                async with await RuleServiceClient.connect(
                    "127.0.0.1", service.port
                ) as client:
                    before = await client.healthz()
                    assert before["version"] == 1
                    assert before["version_tag"] == old_book.fingerprint
                    assert before["n_rules"] == len(old_book)

                    result = await client.request(
                        {"type": "reload", "rulebook": str(new_path)}
                    )
                    assert result["type"] == "reload_result"
                    assert result["version"] == 2
                    assert result["n_rules"] == len(new_book)

                    after = await client.healthz()
                    assert after["version"] == 2
                    assert after["version_tag"] == new_book.fingerprint
                    assert after["n_rules"] == len(new_book)

                    match = await client.match(["anything"])
                    assert match["version"] == 2

                    metrics = await client.metrics()
                    assert metrics["requests"]["reloads"] == 1
            finally:
                await service.shutdown()

        run(scenario())

    def test_wire_reload_rejects_bad_paths_and_versions(self, tmp_path):
        book = RuleBook(rules=random_rules(random.Random(0), 20, 20))
        garbage = tmp_path / "garbage.jsonl"
        garbage.write_text("this is not a rulebook\n")

        async def scenario():
            service = RuleService.from_rulebook(book)
            await service.start(port=0)
            try:
                async with await RuleServiceClient.connect(
                    "127.0.0.1", service.port
                ) as client:
                    with pytest.raises(ServiceError) as excinfo:
                        await client.request(
                            {
                                "type": "reload",
                                "rulebook": str(tmp_path / "missing.jsonl"),
                            }
                        )
                    assert excinfo.value.code == "reload_failed"

                    with pytest.raises(ServiceError) as excinfo:
                        await client.request(
                            {"type": "reload", "rulebook": str(garbage)}
                        )
                    assert excinfo.value.code == "reload_failed"

                    with pytest.raises(ServiceError) as excinfo:
                        await client.request({"type": "reload"})
                    assert excinfo.value.code == "bad_request"

                    # failed reloads leave the service on the old book
                    health = await client.healthz()
                    assert health["version"] == 1
                    assert health["n_rules"] == len(book)
            finally:
                await service.shutdown()

        run(scenario())

    def test_flip_lands_between_batches_under_load(self):
        old_index = make_index(seed=0)
        new_index = make_index(seed=9, n_rules=60)

        async def scenario():
            service = VersionRecordingService(
                old_index, delay_s=0.005, max_batch=8
            )
            await service.start(port=0)
            try:
                async with await RuleServiceClient.connect(
                    "127.0.0.1", service.port
                ) as client:
                    # phase 1 enqueued ahead of the flip, phase 2 behind
                    for _ in range(40):
                        await client.send(
                            {"type": "match", "transaction": ["X = 1"]}
                        )
                    # the wire bytes must reach the service's queue before
                    # the flip marker does (reload() enqueues in-process,
                    # skipping the socket)
                    while (
                        service.metrics.n_matched + service._queue.qsize()
                        < 40
                    ):
                        await asyncio.sleep(0.001)
                    reload_task = asyncio.create_task(
                        service.reload(new_index)
                    )
                    await asyncio.sleep(0)  # let the flip enqueue
                    for _ in range(40):
                        await client.send(
                            {"type": "match", "transaction": ["X = 1"]}
                        )
                    responses = [await client.receive() for _ in range(80)]
                    assert await reload_task == 2

                # zero drops, zero errors under the flip
                assert all(
                    r["type"] == "match_result" for r in responses
                ), responses
                versions = [r["version"] for r in responses]
                # request order decides the version: old then new, never
                # interleaved — and the flip really happened mid-stream
                assert versions == sorted(versions)
                assert versions[0] == 1 and versions[-1] == 2
                # every micro-batch saw exactly one version (recorded at
                # batch entry; flips only apply between batches)
                assert set(service.batch_versions) <= {1, 2}
                assert service.metrics.n_matched == 80
            finally:
                await service.shutdown()

        run(scenario())

    def test_offline_reload_rearms_between_runs(self):
        async def scenario():
            service = RuleService(make_index(seed=0))
            version = await service.reload(
                make_index(seed=1), version_tag="second"
            )
            assert version == 2
            assert service.version_tag == "second"
            await service.start(port=0)
            try:
                async with await RuleServiceClient.connect(
                    "127.0.0.1", service.port
                ) as client:
                    health = await client.healthz()
                    assert health["version"] == 2
                    assert health["version_tag"] == "second"
            finally:
                await service.shutdown()

        run(scenario())
