"""Tests for the asyncio rule service: protocol, backpressure, drain."""

import asyncio
import json
import random

import pytest

from repro.engine import LatencyHistogram
from repro.serve import (
    RuleBook,
    RuleIndex,
    RuleService,
    RuleServiceClient,
    ServiceError,
    replay_traffic,
)

from .test_serve_rulebook import random_rules


def make_index(seed=0, n_rules=50, n_items=20) -> RuleIndex:
    book = RuleBook(rules=random_rules(random.Random(seed), n_rules, n_items))
    return RuleIndex.from_rulebook(book)


class SlowService(RuleService):
    """Batch processing slowed down to force queue buildup in tests."""

    def __init__(self, *args, delay_s: float = 0.05, **kwargs):
        super().__init__(*args, **kwargs)
        self.delay_s = delay_s

    async def _process_batch(self, batch):
        await asyncio.sleep(self.delay_s)
        await super()._process_batch(batch)


def run(coro):
    return asyncio.run(coro)


class TestProtocol:
    def test_healthz_match_metrics(self):
        index = make_index()

        async def scenario():
            service = RuleService(index)
            await service.start(port=0)
            try:
                async with await RuleServiceClient.connect(
                    "127.0.0.1", service.port
                ) as client:
                    health = await client.healthz()
                    assert health["status"] == "ok"
                    assert health["n_rules"] == len(index)
                    assert health["uptime_s"] >= 0

                    transaction = [str(i) for i in index.rules[0].antecedent]
                    result = await client.match(transaction, explain=True)
                    assert result["type"] == "match_result"
                    assert any(m["rule_id"] == 0 for m in result["fired"])
                    assert "near_misses" in result

                    metrics = await client.metrics()
                    assert metrics["requests"]["matched"] == 1
                    assert metrics["latency"]["count"] == 1
                    assert metrics["queue_depth"] == 0
                    assert any(
                        count == 1 for count in metrics["rule_matches"].values()
                    )
            finally:
                await service.shutdown()

        run(scenario())

    def test_matches_agree_with_direct_index(self):
        index = make_index(seed=9)
        vocabulary = sorted(
            {str(i) for rule in index.rules for i in rule.antecedent}
        )
        rng = random.Random(17)
        transactions = [
            rng.sample(vocabulary, rng.randint(0, 8)) for _ in range(50)
        ]

        async def scenario():
            service = RuleService(index)
            await service.start(port=0)
            try:
                async with await RuleServiceClient.connect(
                    "127.0.0.1", service.port
                ) as client:
                    for transaction in transactions:
                        response = await client.match(transaction)
                        expected = [m.rule_id for m in index.match(transaction)]
                        got = [m["rule_id"] for m in response["fired"]]
                        assert got == expected
            finally:
                await service.shutdown()

        run(scenario())

    def test_bad_requests_rejected_not_fatal(self):
        async def scenario():
            service = RuleService(make_index())
            await service.start(port=0)
            try:
                reader, writer = await asyncio.open_connection(
                    "127.0.0.1", service.port
                )
                for payload in (
                    b"not json\n",
                    b'{"type": "unknown"}\n',
                    b'{"type": "match", "transaction": "nope"}\n',
                    b'[1, 2]\n',
                ):
                    writer.write(payload)
                    await writer.drain()
                    response = json.loads(await reader.readline())
                    assert response["type"] == "error"
                    assert response["error"] == "bad_request"
                # the connection still works after every rejection
                writer.write(b'{"type": "healthz"}\n')
                await writer.drain()
                assert json.loads(await reader.readline())["status"] == "ok"
                writer.close()
                await writer.wait_closed()
                assert service.metrics.n_bad_requests == 4
            finally:
                await service.shutdown()

        run(scenario())

    def test_concurrent_clients_are_batched(self):
        index = make_index()
        transaction = [str(i) for i in index.rules[0].antecedent]

        async def one_client(port):
            async with await RuleServiceClient.connect("127.0.0.1", port) as c:
                return await c.match(transaction)

        async def scenario():
            # a slow batcher lets concurrent requests pile into one batch
            service = SlowService(make_index(), delay_s=0.05, max_batch=64)
            await service.start(port=0)
            try:
                results = await asyncio.gather(
                    *(one_client(service.port) for _ in range(16))
                )
                assert all(r["type"] == "match_result" for r in results)
                assert service.metrics.n_batches < 16  # batching happened
            finally:
                await service.shutdown()

        run(scenario())


class TestBackpressure:
    def test_overload_rejected_with_retry_after(self):
        async def scenario():
            service = SlowService(
                make_index(), delay_s=0.2, max_queue=2, max_batch=1,
                retry_after_s=0.123,
            )
            await service.start(port=0)
            try:
                async def one(port):
                    async with await RuleServiceClient.connect(
                        "127.0.0.1", port
                    ) as client:
                        try:
                            return await client.match(["X = 1"])
                        except ServiceError as exc:
                            return exc

                outcomes = await asyncio.gather(
                    *(one(service.port) for _ in range(10))
                )
                rejected = [o for o in outcomes if isinstance(o, ServiceError)]
                served = [o for o in outcomes if not isinstance(o, ServiceError)]
                assert rejected, "queue of 2 must shed some of 10 requests"
                assert served, "some requests must still be served"
                for exc in rejected:
                    assert exc.code == "overloaded"
                    assert exc.retry_after == pytest.approx(0.123)
                assert service.metrics.n_rejected == len(rejected)
            finally:
                await service.shutdown()

        run(scenario())

    def test_replay_traffic_retries_through_backpressure(self):
        index = make_index()
        vocabulary = sorted(
            {str(i) for rule in index.rules for i in rule.antecedent}
        )
        rng = random.Random(5)
        transactions = [
            rng.sample(vocabulary, rng.randint(1, 6)) for _ in range(60)
        ]

        async def scenario():
            service = SlowService(
                index, delay_s=0.01, max_queue=4, max_batch=2
            )
            await service.start(port=0)
            try:
                stats = await replay_traffic(
                    "127.0.0.1",
                    service.port,
                    transactions,
                    concurrency=6,
                )
            finally:
                await service.shutdown()
            return stats

        stats = run(scenario())
        # every job eventually served: rejections were retried, not dropped
        assert stats.n_requests == len(transactions)
        assert stats.n_failed == 0
        assert stats.seconds > 0


class TestShutdown:
    def test_graceful_drain_answers_queued_requests(self):
        index = make_index()
        transaction = [str(i) for i in index.rules[0].antecedent]

        async def scenario():
            service = SlowService(index, delay_s=0.05, max_batch=1)
            await service.start(port=0)
            port = service.port

            async def one():
                async with await RuleServiceClient.connect("127.0.0.1", port) as c:
                    return await c.match(transaction)

            pending = [asyncio.create_task(one()) for _ in range(6)]
            # wait until every request is either queued or already answered
            # (a fixed sleep races with slow machines: a request arriving
            # after the drain starts is rejected, not drained)
            while service.metrics.n_matched + service._queue.qsize() < 6:
                await asyncio.sleep(0.005)
            await service.shutdown()
            results = await asyncio.gather(*pending)
            assert all(r["type"] == "match_result" for r in results)
            # fully stopped: new connections are refused
            with pytest.raises(OSError):
                await asyncio.open_connection("127.0.0.1", port)

        run(scenario())

    def test_restart_after_shutdown(self):
        async def scenario():
            service = RuleService(make_index())
            await service.start(port=0)
            await service.shutdown()
            await service.start(port=0)
            try:
                async with await RuleServiceClient.connect(
                    "127.0.0.1", service.port
                ) as client:
                    assert (await client.healthz())["status"] == "ok"
            finally:
                await service.shutdown()

        run(scenario())


class TestLatencyHistogram:
    def test_quantiles_bracket_samples(self):
        hist = LatencyHistogram()
        rng = random.Random(0)
        samples = [rng.uniform(1e-4, 1e-2) for _ in range(10_000)]
        for s in samples:
            hist.record(s)
        samples.sort()
        for q in (0.5, 0.9, 0.99):
            exact = samples[int(q * (len(samples) - 1))]
            approx = hist.quantile(q)
            # log-bucketed: within one bucket width (~9 %) of the truth
            assert exact / 1.2 <= approx <= exact * 1.2
        assert hist.quantile(0.0) >= min(samples) / 1.2
        assert hist.quantile(1.0) == pytest.approx(max(samples))

    def test_empty_histogram(self):
        hist = LatencyHistogram()
        assert len(hist) == 0
        assert hist.quantile(0.5) == 0.0
        assert hist.mean == 0.0
        assert hist.as_dict()["count"] == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            LatencyHistogram(min_seconds=0)
        with pytest.raises(ValueError):
            LatencyHistogram(growth=1.0)
        with pytest.raises(ValueError):
            LatencyHistogram().quantile(1.5)

    def test_overflow_and_clamp(self):
        hist = LatencyHistogram(max_seconds=1.0)
        hist.record(5.0)  # beyond the last bucket
        hist.record(-1.0)  # clamps to zero
        assert len(hist) == 2
        assert hist.quantile(1.0) == 5.0
        assert hist.as_dict()["min_s"] == 0.0
