"""Unit tests for the transactional encoder."""

import numpy as np
import pytest

from repro.core import Item
from repro.dataframe import ColumnTable
from repro.preprocess import BinningSpec, FeatureSpec, TransactionEncoder


@pytest.fixture()
def table():
    return ColumnTable.from_dict(
        {
            "sm_util": [0.0, 50.0, 0.0, 90.0, 10.0, None],
            "gpu_type": ["T4", "V100", None, "T4", "V100", "T4"],
            "failed": [True, False, True, False, False, True],
            "tier": ["Freq User", "Rare User", "Freq User", "Rare User",
                     "Freq User", "Rare User"],
        }
    )


class TestAutoEncoding:
    def test_auto_kinds(self, table):
        db = TransactionEncoder().fit_transform(table)
        assert len(db) == 6
        # numeric → bins, categorical → feature=value, boolean → flag
        rendered = {i.render() for i in db.vocabulary}
        assert "gpu_type = T4" in rendered
        assert "failed" in rendered
        assert any(r.startswith("sm_util = Bin") for r in rendered)

    def test_missing_values_contribute_no_item(self, table):
        db = TransactionEncoder().fit_transform(table)
        # row 2: gpu_type missing → only sm_util + failed + tier items
        assert len(db.transaction(2)) == 3
        # row 5: sm_util missing
        items = db.vocabulary.items_of(db.transaction(5).tolist())
        assert not any(i.feature == "sm_util" for i in items)


class TestSpecs:
    def test_item_feature_rename_and_zero_bin(self, table):
        specs = [
            FeatureSpec(
                "sm_util", item_feature="SM Util", binning=BinningSpec(zero_label="0%")
            ),
            FeatureSpec("failed", kind="flag", true_label="Failed"),
        ]
        db = TransactionEncoder(specs).fit_transform(table)
        assert db.support_count([Item("SM Util", "0%")]) == 2
        assert db.support_count([Item.flag("Failed")]) == 3

    def test_label_kind_flags_values(self, table):
        specs = [FeatureSpec("tier", kind="label")]
        db = TransactionEncoder(specs).fit_transform(table)
        assert db.support_count([Item.flag("Freq User")]) == 3
        assert db.support_count([Item.flag("Rare User")]) == 3

    def test_flag_from_numeric_01(self):
        t = ColumnTable.from_dict({"flag": [1.0, 0.0, None, 1.0]})
        db = TransactionEncoder(
            [FeatureSpec("flag", kind="flag", true_label="On")]
        ).fit_transform(t)
        assert db.support_count([Item.flag("On")]) == 2

    def test_duplicate_feature_names_rejected(self, table):
        specs = [
            FeatureSpec("sm_util", item_feature="X"),
            FeatureSpec("gpu_type", item_feature="X"),
        ]
        with pytest.raises(ValueError, match="duplicate"):
            TransactionEncoder(specs).fit(table)

    def test_kind_mismatch_rejected(self, table):
        with pytest.raises(TypeError):
            TransactionEncoder(
                [FeatureSpec("gpu_type", kind="numeric")]
            ).fit(table)

    def test_transform_before_fit_rejected(self, table):
        with pytest.raises(RuntimeError):
            TransactionEncoder().transform(table)


class TestFitTransformSeparation:
    def test_bins_learned_on_fit_table(self):
        train = ColumnTable.from_dict({"x": list(np.linspace(0, 100, 50))})
        test = ColumnTable.from_dict({"x": [200.0, -50.0]})
        enc = TransactionEncoder([FeatureSpec("x")]).fit(train)
        db = enc.transform(test)
        items = sorted(
            i.render() for t in db.iter_item_transactions() for i in t
        )
        # out-of-range values clamp to the extreme bins
        assert items == ["x = Bin1", "x = Bin4"]

    def test_bin_ranges_exposed(self, table):
        enc = TransactionEncoder([FeatureSpec("sm_util")]).fit(table)
        ranges = enc.bin_ranges()["sm_util"]
        assert all(lo <= hi for lo, hi in ranges.values())

    def test_shared_vocabulary_across_transforms(self, table):
        enc = TransactionEncoder([FeatureSpec("failed", kind="flag")]).fit(table)
        db1 = enc.transform(table)
        db2 = enc.transform(table, vocabulary=db1.vocabulary)
        assert db2.vocabulary is db1.vocabulary

    def test_empty_spec_list_builds_empty_transactions(self, table):
        # encoder requires at least the specs given; with zero columns the
        # database still has one (empty) transaction per row
        enc = TransactionEncoder([])
        db = enc.fit_transform(table)
        assert len(db) == len(table)
        assert db.n_items == 0
