"""Tests for condensed patterns (closed/maximal) and extra measures."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MiningConfig, TransactionDatabase, mine_frequent_itemsets
from repro.core.interest import (
    cosine,
    extended_metrics,
    imbalance_ratio,
    jaccard,
    kulczynski,
)
from repro.core.patterns import (
    closed_itemsets,
    maximal_itemsets,
    support_of_from_closed,
)
from repro.core.rules import AssociationRule
from repro.core.items import Item


def _mine(db, min_support=0.2):
    return mine_frequent_itemsets(db, MiningConfig(min_support=min_support, max_len=None))


class TestClosedMaximal:
    def test_textbook_closed(self, toy_db):
        fis = _mine(toy_db, 0.2)
        closed = closed_itemsets(fis)
        # every closed itemset is frequent with the same count
        for itemset, count in closed.counts.items():
            assert fis.counts[itemset] == count
        # something was condensed away
        assert len(closed) < len(fis)

    def test_closed_definition_holds(self, toy_db):
        fis = _mine(toy_db, 0.2)
        closed = closed_itemsets(fis)
        for itemset, count in closed.counts.items():
            for other, other_count in fis.counts.items():
                if itemset < other:
                    assert other_count < count, (
                        f"{fis.render(itemset)} has an equal-support superset "
                        f"{fis.render(other)} — not closed"
                    )

    def test_maximal_subset_of_closed(self, toy_db):
        fis = _mine(toy_db, 0.2)
        closed = set(closed_itemsets(fis).counts)
        maximal = set(maximal_itemsets(fis).counts)
        assert maximal <= closed

    def test_maximal_no_frequent_supersets(self, toy_db):
        fis = _mine(toy_db, 0.2)
        maximal = maximal_itemsets(fis)
        for itemset in maximal.counts:
            for other in fis.counts:
                assert not (itemset < other)

    def test_support_recovery_from_closed(self, toy_db):
        fis = _mine(toy_db, 0.2)
        closed = closed_itemsets(fis)
        for itemset, count in fis.counts.items():
            assert support_of_from_closed(closed, itemset) == count

    def test_recovery_of_infrequent_is_none(self, toy_db):
        fis = _mine(toy_db, 0.4)
        closed = closed_itemsets(fis)
        eggs = toy_db.vocabulary.id_of("eggs")
        cola = toy_db.vocabulary.id_of("cola")
        assert support_of_from_closed(closed, frozenset({eggs, cola})) is None

    def test_empty_table(self, toy_db):
        from repro.core import FrequentItemsets

        empty = FrequentItemsets({}, toy_db.vocabulary, 5, 0.5)
        assert len(closed_itemsets(empty)) == 0
        assert len(maximal_itemsets(empty)) == 0


@st.composite
def random_db(draw):
    n_items = draw(st.integers(2, 6))
    txns = draw(
        st.lists(
            st.lists(st.integers(0, n_items - 1), max_size=n_items),
            min_size=1,
            max_size=25,
        )
    )
    return TransactionDatabase.from_itemsets([[f"i{i}" for i in t] for t in txns])


@given(db=random_db(), min_support=st.sampled_from([0.1, 0.3]))
@settings(max_examples=60, deadline=None)
def test_condensation_hierarchy(db, min_support):
    """maximal ⊆ closed ⊆ frequent, and closed recovery is lossless."""
    fis = _mine(db, min_support)
    closed = closed_itemsets(fis)
    maximal = maximal_itemsets(fis)
    assert set(maximal.counts) <= set(closed.counts) <= set(fis.counts)
    for itemset, count in fis.counts.items():
        assert support_of_from_closed(closed, itemset) == count


class TestInterestMeasures:
    def test_jaccard_bounds(self):
        assert jaccard(0.2, 0.2, 0.2) == pytest.approx(1.0)  # identical sets
        assert jaccard(0.0, 0.3, 0.3) == 0.0

    def test_cosine_perfect_overlap(self):
        assert cosine(0.2, 0.2, 0.2) == pytest.approx(1.0)

    def test_kulczynski_mean_of_confidences(self):
        # conf(X⇒Y)=0.5, conf(Y⇒X)=1.0 → 0.75
        assert kulczynski(0.1, 0.2, 0.1) == pytest.approx(0.75)

    def test_imbalance_symmetric_zero(self):
        assert imbalance_ratio(0.1, 0.2, 0.2) == 0.0

    def test_imbalance_grows_with_asymmetry(self):
        assert imbalance_ratio(0.1, 0.5, 0.1) > imbalance_ratio(0.1, 0.2, 0.1)

    def test_degenerate_zero_supports(self):
        assert cosine(0.0, 0.0, 0.0) == 0.0
        assert kulczynski(0.0, 0.0, 0.1) == 0.0
        assert imbalance_ratio(0.0, 0.0, 0.0) == 0.0

    def test_extended_metrics_roundtrip(self):
        rule = AssociationRule(
            antecedent=frozenset({Item("a", "1")}),
            consequent=frozenset({Item("b", "1")}),
            antecedent_ids=frozenset({0}),
            consequent_ids=frozenset({1}),
            support=0.1,
            confidence=0.5,  # supp_x = 0.2
            lift=2.5,  # supp_y = 0.2
            leverage=0.06,
            conviction=1.6,
        )
        m = extended_metrics(rule)
        assert m.jaccard == pytest.approx(jaccard(0.1, 0.2, 0.2))
        assert m.cosine == pytest.approx(cosine(0.1, 0.2, 0.2))
        assert m.kulczynski == pytest.approx(kulczynski(0.1, 0.2, 0.2))
        assert m.imbalance_ratio == pytest.approx(0.0)

    @given(
        supp_x=st.floats(0.05, 1.0),
        supp_y=st.floats(0.05, 1.0),
        frac=st.floats(0.0, 1.0),
    )
    @settings(max_examples=150, deadline=None)
    def test_measure_bounds_property(self, supp_x, supp_y, frac):
        supp_xy = frac * min(supp_x, supp_y)
        assert 0.0 <= jaccard(supp_xy, supp_x, supp_y) <= 1.0 + 1e-9
        assert 0.0 <= cosine(supp_xy, supp_x, supp_y) <= 1.0 + 1e-9
        assert 0.0 <= kulczynski(supp_xy, supp_x, supp_y) <= 1.0 + 1e-9
        assert 0.0 <= imbalance_ratio(supp_xy, supp_x, supp_y) <= 1.0 + 1e-9
