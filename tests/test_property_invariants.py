"""Cross-cutting property tests: round trips, fixed points, invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    Item,
    MiningConfig,
    TransactionDatabase,
    generate_rules,
    mine_frequent_itemsets,
    prune_rules,
)
from repro.core.pruning import PruningConfig
from repro.dataframe import ColumnTable, read_csv_text, write_csv_text
from repro.preprocess import drop_skewed_items

# -- CSV round trips -----------------------------------------------------------

# text cells that survive CSV: no NA-sentinel strings, no leading/trailing
# whitespace loss concerns (csv module preserves), any punctuation
_cell = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",), blacklist_characters="\r\n"),
    min_size=1,
    max_size=12,
).filter(
    lambda s: s.strip().lower() not in {"", "na", "nan", "null", "true", "false"}
    and s == s.strip()
)
_number = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
).map(lambda x: round(x, 6))


@given(
    strings=st.lists(st.one_of(_cell, st.none()), min_size=1, max_size=20),
    numbers=st.lists(st.one_of(_number, st.none()), min_size=1, max_size=20),
)
@settings(max_examples=100, deadline=None)
def test_csv_roundtrip_property(strings, numbers):
    n = min(len(strings), len(numbers))
    strings, numbers = strings[:n], numbers[:n]
    # avoid columns whose every string is numeric-parseable (type flips)
    if all(s is None or _parses_float(s) for s in strings):
        strings = [None if s is None else f"s{s}" for s in strings]
    table = ColumnTable.from_dict({"label": strings, "value": numbers})
    back = read_csv_text(write_csv_text(table))
    assert back["label"].to_list() == strings
    for a, b in zip(back["value"].to_list(), numbers):
        if b is None:
            assert a is None
        else:
            assert a == pytest.approx(b, abs=1e-9)


def _parses_float(s: str) -> bool:
    try:
        float(s)
        return True
    except ValueError:
        return False


# -- pruning is a fixed point -----------------------------------------------------

@st.composite
def keyword_database(draw):
    n_items = draw(st.integers(3, 6))
    txns = draw(
        st.lists(
            st.lists(st.integers(0, n_items - 1), max_size=n_items),
            min_size=5,
            max_size=40,
        )
    )
    # ensure the keyword item occurs
    txns.append([0, 1])
    return TransactionDatabase.from_itemsets([[f"i{i}" for i in t] for t in txns])


@given(db=keyword_database())
@settings(max_examples=60, deadline=None)
def test_pruning_is_idempotent(db):
    """A kept rule survives re-pruning: the output is a fixed point.

    (In pass 2 every candidate pruning pair is a subset of pass 1's pairs,
    and none of those marked a kept rule.)
    """
    fis = mine_frequent_itemsets(db, MiningConfig(min_support=0.1, max_len=4))
    kw = db.vocabulary.id_of("i0")
    rules = generate_rules(fis, min_lift=0.0, keyword_ids=(kw,))
    config = PruningConfig()
    once, _ = prune_rules(rules, Item.flag("i0"), config)
    twice, report = prune_rules(once, Item.flag("i0"), config)
    assert [str(r) for r in twice] == [str(r) for r in once]
    assert report.n_pruned == 0


@given(db=keyword_database())
@settings(max_examples=60, deadline=None)
def test_pruning_output_subset_of_input(db):
    fis = mine_frequent_itemsets(db, MiningConfig(min_support=0.1, max_len=4))
    kw = db.vocabulary.id_of("i0")
    rules = generate_rules(fis, min_lift=0.0, keyword_ids=(kw,))
    kept, report = prune_rules(rules, Item.flag("i0"), PruningConfig())
    input_keys = {str(r) for r in rules}
    assert all(str(r) in input_keys for r in kept)
    assert report.n_kept + report.n_pruned == report.n_input


# -- rule enumeration count ---------------------------------------------------------

def test_rule_count_for_full_itemset():
    """An itemset of size k yields exactly 2^k − 2 unfiltered rules."""
    db = TransactionDatabase.from_itemsets([["a", "b", "c", "d"]] * 10)
    fis = mine_frequent_itemsets(db, MiningConfig(min_support=1.0, max_len=None))
    rules = generate_rules(fis, min_lift=0.0)
    by_union = {}
    for rule in rules:
        union = rule.antecedent_ids | rule.consequent_ids
        by_union.setdefault(len(union), []).append(rule)
    assert len(by_union[2]) == 6 * 2  # C(4,2) pairs × 2 directions
    assert len(by_union[4]) == 2**4 - 2


# -- skew filter ------------------------------------------------------------------

@given(db=keyword_database(), max_share=st.sampled_from([0.5, 0.8, 0.95]))
@settings(max_examples=60, deadline=None)
def test_skew_filter_properties(db, max_share):
    filtered, dropped = drop_skewed_items(db, max_share)
    n = len(db)
    assert len(filtered) == n  # |D| preserved
    counts = filtered.item_support_counts()
    # no surviving item exceeds the share
    assert all(c / n <= max_share + 1e-9 for c in counts)
    # dropped items really were skewed
    original = db.item_support_counts()
    for item in dropped:
        item_id = db.vocabulary.id_of(item)
        assert original[item_id] / n > max_share


# -- mining thresholds ---------------------------------------------------------------

@given(
    db=keyword_database(),
    min_support=st.sampled_from([0.1, 0.3]),
    min_lift=st.sampled_from([0.0, 1.0, 1.5]),
)
@settings(max_examples=60, deadline=None)
def test_generated_rules_respect_thresholds(db, min_support, min_lift):
    fis = mine_frequent_itemsets(db, MiningConfig(min_support=min_support, max_len=4))
    for rule in generate_rules(fis, min_lift=min_lift):
        assert rule.support >= min_support - 1e-9 or True  # supp(rule) ≥ supp of union
        assert rule.lift >= min_lift
        union = rule.antecedent_ids | rule.consequent_ids
        assert fis.support_of(union) >= min_support - 1.0 / max(len(db), 1)


# -- support monotonicity under restriction --------------------------------------------

@given(db=keyword_database())
@settings(max_examples=40, deadline=None)
def test_restrict_items_only_lowers_supports(db):
    keep = list(range(0, db.n_items, 2))
    if not keep:
        return
    sub = db.restrict_items(keep)
    original = db.item_support_counts()
    restricted = sub.item_support_counts()
    for i in range(db.n_items):
        if i in keep:
            assert restricted[i] == original[i]
        else:
            assert restricted[i] == 0
