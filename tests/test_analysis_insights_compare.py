"""Tests for insight extraction and cross-trace contrast analysis."""

import pytest

from repro.analysis.compare import contrast_keyword
from repro.analysis.insights import (
    Insight,
    detect_debug_tier,
    detect_gang_screening,
    detect_heavy_user_support,
    detect_late_failures,
    detect_new_user_onboarding,
    detect_submission_predictability,
    detect_weak_predictability,
    extract_insights,
)
from repro.core import (
    Item,
    MiningConfig,
    mine_frequent_itemsets,
    mine_keyword_rules,
)
from repro.core.mining import KeywordRuleSet
from repro.core.pruning import PruningReport
from repro.core.rules import AssociationRule

IDS: dict[str, int] = {}


def _item(text: str) -> Item:
    return Item.parse(text)


def _rule(ant_texts, cons_texts, conf=0.8, lift=2.0, supp=0.1):
    for t in list(ant_texts) + list(cons_texts):
        IDS.setdefault(t, len(IDS))
    return AssociationRule(
        antecedent=frozenset(_item(t) for t in ant_texts),
        consequent=frozenset(_item(t) for t in cons_texts),
        antecedent_ids=frozenset(IDS[t] for t in ant_texts),
        consequent_ids=frozenset(IDS[t] for t in cons_texts),
        support=supp,
        confidence=conf,
        lift=lift,
        leverage=0.0,
        conviction=1.0,
    )


def _ruleset(keyword, cause=(), characteristic=()):
    return KeywordRuleSet(
        keyword=_item(keyword),
        cause=tuple(cause),
        characteristic=tuple(characteristic),
        report=PruningReport(),
        n_rules_before_pruning=len(cause) + len(characteristic),
    )


class TestDetectors:
    def test_submission_predictability_fires(self):
        rs = _ruleset(
            "Failed",
            cause=[_rule(["Freq Group", "CPU Request = Bin1"], ["Failed"], conf=0.95)],
        )
        insight = detect_submission_predictability(rs)
        assert insight is not None
        assert insight.code == "submission-predictability"
        assert insight.evidence

    def test_submission_predictability_ignores_runtime_features(self):
        rs = _ruleset(
            "Failed",
            cause=[_rule(["SM Util = 0%"], ["Failed"], conf=0.95)],
        )
        assert detect_submission_predictability(rs) is None

    def test_weak_predictability(self):
        rs = _ruleset(
            "Failed", cause=[_rule(["GMem Util = Bin1"], ["Failed"], conf=0.25)]
        )
        insight = detect_weak_predictability(rs)
        assert insight is not None
        assert "0.25" in insight.recommendation

    def test_weak_not_fired_when_strong_exists(self):
        rs = _ruleset("Failed", cause=[_rule(["x"], ["Failed"], conf=0.9)])
        assert detect_weak_predictability(rs) is None

    def test_debug_tier_only_for_underutilization(self):
        idle = _ruleset(
            "SM Util = 0%",
            cause=[_rule(["CPU Util = Bin1", "Runtime = Bin1"], ["SM Util = 0%"])],
        )
        assert detect_debug_tier(idle) is not None
        fail = _ruleset(
            "Failed", cause=[_rule(["CPU Util = Bin1"], ["Failed"])]
        )
        assert detect_debug_tier(fail) is None

    def test_heavy_user_support(self):
        rs = _ruleset(
            "Failed", cause=[_rule(["Freq User"], ["Failed"], conf=0.91)]
        )
        assert detect_heavy_user_support(rs) is not None

    def test_late_failures_from_characteristics(self):
        rs = _ruleset(
            "Failed",
            characteristic=[_rule(["Failed"], ["Runtime = Bin4"], conf=0.4, lift=1.7)],
        )
        assert detect_late_failures(rs) is not None

    def test_new_user_onboarding(self):
        rs = _ruleset(
            "Job Killed", cause=[_rule(["New User"], ["Job Killed"], lift=1.8)]
        )
        insight = detect_new_user_onboarding(rs)
        assert insight is not None
        assert "onboarding" in insight.recommendation

    def test_gang_screening_only_for_failure(self):
        fail = _ruleset("Failed", cause=[_rule(["Multi-GPU"], ["Failed"], lift=2.5)])
        assert detect_gang_screening(fail) is not None
        other = _ruleset(
            "SM Util = 0%", cause=[_rule(["Multi-GPU"], ["SM Util = 0%"], lift=2.5)]
        )
        assert detect_gang_screening(other) is None

    def test_render_contains_evidence(self):
        rs = _ruleset("Failed", cause=[_rule(["Multi-GPU"], ["Failed"], lift=2.5)])
        insight = detect_gang_screening(rs)
        text = insight.render()
        assert "gang-screening" in text and "evidence" in text


class TestExtractOnRealTraces:
    def test_pai_failure_insights(self, pai_db):
        cfg = MiningConfig()
        result = mine_keyword_rules(pai_db, "Failed", cfg)
        insights = extract_insights(result)
        codes = {i.code for i in insights}
        # the PAI takeaways: predictable at submission, heavy-user driven
        assert "submission-predictability" in codes
        assert "heavy-user-support" in codes

    def test_supercloud_failure_insights(self, supercloud_db):
        cfg = MiningConfig()
        result = mine_keyword_rules(supercloud_db, "Failed", cfg)
        codes = {i.code for i in extract_insights(result)}
        # SuperCloud: weakly predictable, with late failures
        assert "weak-predictability" in codes
        assert "late-failures" in codes

    def test_philly_failure_insights(self, philly_db):
        cfg = MiningConfig()
        result = mine_keyword_rules(philly_db, "Failed", cfg)
        codes = {i.code for i in extract_insights(result)}
        assert "gang-screening" in codes
        assert "new-user-onboarding" in codes

    def test_underutilization_debug_tier(self, philly_db):
        cfg = MiningConfig()
        result = mine_keyword_rules(philly_db, "SM Util = 0%", cfg)
        codes = {i.code for i in extract_insights(result)}
        assert "debug-tier" in codes


class TestContrast:
    def test_contrast_table_structure(self, supercloud_db, philly_db):
        cfg = MiningConfig()
        results = {
            "SuperCloud": mine_keyword_rules(supercloud_db, "Failed", cfg),
            "Philly": mine_keyword_rules(philly_db, "Failed", cfg),
        }
        table = contrast_keyword(results)
        assert table.keyword == "Failed"
        assert table.traces == ["SuperCloud", "Philly"]
        assert table.signals
        rendered = table.render()
        assert "Failed" in rendered

    def test_trace_specific_signals_found(self, supercloud_db, philly_db):
        cfg = MiningConfig()
        results = {
            "SuperCloud": mine_keyword_rules(supercloud_db, "Failed", cfg),
            "Philly": mine_keyword_rules(philly_db, "Failed", cfg),
        }
        table = contrast_keyword(results)
        specific = {s.item for s in table.trace_specific()}
        # the paper's contrast: multi-GPU failure is Philly-only
        assert any("Multi-GPU" in s for s in specific)

    def test_mismatched_keywords_rejected(self, supercloud_db):
        cfg = MiningConfig()
        a = mine_keyword_rules(supercloud_db, "Failed", cfg)
        b = mine_keyword_rules(supercloud_db, "Job Killed", cfg)
        with pytest.raises(ValueError, match="mismatched"):
            contrast_keyword({"x": a, "y": b})

    def test_empty_input_rejected(self):
        with pytest.raises(ValueError):
            contrast_keyword({})
