"""Packed-bitmap kernel contracts: answers never change, only the speed.

Every fast path introduced with :mod:`repro.core.bitmap` has a slow,
obviously-correct twin it is checked against here:

* packed support counts vs naive Python subset counting (property test,
  including empty transactions and items present in every transaction);
* struct-of-arrays FP-Growth vs the object-tree reference, on random
  databases and on all three synthetic traces;
* packed Eclat/Apriori vs their dense-boolean references
  (:mod:`repro.core.legacy`);
* vectorised rule metrics vs scalar :func:`compute_metrics`;
* ``from_encoded`` vs the generic ``from_itemsets`` loop.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MiningConfig, TransactionDatabase, generate_rules
from repro.core.apriori import apriori
from repro.core.bitmap import (
    PackedBitmaps,
    bitmap_cache_info,
    clear_bitmap_cache,
    get_shared_bitmaps,
    kernel_snapshot,
    kernel_timer,
    popcount,
)
from repro.core.eclat import eclat
from repro.core.fpgrowth import fpgrowth, fpgrowth_object
from repro.core.items import ItemVocabulary
from repro.core.itemsets import FrequentItemsets
from repro.core.legacy import (
    apriori_dense,
    count_candidates_dense,
    dense_vertical,
    eclat_dense,
)
from repro.core.metrics import compute_metrics
from repro.parallel.partition import count_candidates

# -- strategies ---------------------------------------------------------------

#: random id-encoded databases: empty transactions allowed, duplicate ids
#: allowed (construction dedupes), small vocabularies so itemsets overlap
_N_ITEMS = 8
_txn = st.lists(st.integers(min_value=0, max_value=_N_ITEMS - 1), max_size=6)
_txns = st.lists(_txn, max_size=40)


def _make_db(raw_txns: list[list[int]]) -> TransactionDatabase:
    vocab = ItemVocabulary()
    for i in range(_N_ITEMS):
        vocab.intern(f"item{i}")
    return TransactionDatabase.from_itemsets(raw_txns, vocabulary=vocab)


def _naive_support(raw_txns: list[list[int]], itemset: set[int]) -> int:
    return sum(1 for t in raw_txns if itemset <= set(t))


# -- popcount + bitmap layout -------------------------------------------------


class TestPopcount:
    def test_empty(self):
        assert popcount(np.zeros(0, dtype=np.uint64)) == 0

    def test_all_ones_word(self):
        assert popcount(np.asarray([np.uint64(0xFFFFFFFFFFFFFFFF)])) == 64

    def test_matches_bin(self):
        rng = np.random.default_rng(7)
        words = rng.integers(0, 2**63, size=33, dtype=np.uint64)
        expected = sum(bin(int(w)).count("1") for w in words)
        assert popcount(words) == expected


class TestBitmapLayout:
    def test_bit_position(self):
        # transaction t lives in word t >> 6 at bit t & 63
        db = _make_db([[0] if t in (0, 63, 64, 100) else [] for t in range(130)])
        words = db.bitmaps().words
        assert words.shape == (_N_ITEMS, 3)
        assert words[0, 0] == (1 | (np.uint64(1) << np.uint64(63)))
        assert words[0, 1] == (1 | (np.uint64(1) << np.uint64(36)))
        assert words[0, 2] == 0

    def test_pad_bits_zero(self):
        # 70 transactions all containing item 0: bits 70..127 must stay 0
        db = _make_db([[0]] * 70)
        bm = db.bitmaps()
        assert bm.words.shape[1] == 2
        assert popcount(bm.words[0]) == 70

    def test_from_onehot_matches_from_database(self):
        rng = np.random.default_rng(3)
        matrix = rng.random((77, _N_ITEMS)) < 0.4
        via_onehot = PackedBitmaps.from_onehot(matrix)
        db = _make_db([list(np.flatnonzero(row)) for row in matrix])
        assert np.array_equal(via_onehot.words, db.bitmaps().words)

    def test_to_bool_roundtrip(self):
        db = _make_db([[0], [], [0, 1], [1]])
        bm = db.bitmaps()
        dense = dense_vertical(db)
        for item in range(2):
            assert np.array_equal(bm.to_bool(bm.row(item)), dense[item])


# -- property: packed support == naive subset counting ------------------------


@given(raw=_txns, itemset=st.sets(st.integers(0, _N_ITEMS - 1), max_size=4))
@settings(max_examples=150, deadline=None)
def test_support_count_matches_naive(raw, itemset):
    db = _make_db(raw)
    bm = db.bitmaps()
    if itemset:
        assert bm.support_count(sorted(itemset)) == _naive_support(raw, itemset)
    else:
        assert bm.support_count([]) == len(raw)


@given(raw=_txns)
@settings(max_examples=100, deadline=None)
def test_item_counts_match_naive(raw):
    db = _make_db(raw)
    counts = db.bitmaps().item_counts()
    for item in range(_N_ITEMS):
        assert counts[item] == _naive_support(raw, {item})


def test_all_ones_item_and_empty_transactions():
    # item 0 in every transaction, item 1 never, plus empty transactions
    raw = [[0], [0, 2], [0], [0, 2, 3], [0]] + [[0]] * 120
    raw.insert(3, [0])
    db = _make_db(raw)
    bm = db.bitmaps()
    assert bm.support_count([0]) == len(raw)
    assert bm.support_count([1]) == 0
    assert bm.support_count([0, 1]) == 0

    with_empties = [[], [0], [], [0, 1], []]
    db2 = _make_db(with_empties)
    assert db2.bitmaps().support_count([0]) == 2
    assert db2.bitmaps().support_count([]) == 5


def test_empty_database():
    db = _make_db([])
    bm = db.bitmaps()
    assert bm.n_transactions == 0
    assert bm.support_count([]) == 0
    assert bm.item_counts().tolist() == [0] * _N_ITEMS


# -- slice_range / txn_range inheritance --------------------------------------


class TestSliceRange:
    def test_matches_fresh_build(self):
        rng = np.random.default_rng(11)
        raw = [list(np.flatnonzero(rng.random(_N_ITEMS) < 0.3)) for _ in range(200)]
        db = _make_db(raw)
        parent = db.bitmaps()
        for start, stop in [(0, 64), (64, 200), (128, 130), (0, 200), (64, 64)]:
            view = parent.slice_range(start, stop)
            fresh = _make_db(raw[start:stop]).bitmaps()
            assert np.array_equal(view.words, fresh.words)

    def test_does_not_mutate_parent(self):
        db = _make_db([[0]] * 5)
        parent = db.bitmaps()
        before = parent.words.copy()
        parent.slice_range(0, 2)  # tail masking must act on a copy
        assert np.array_equal(parent.words, before)

    def test_unaligned_start_rejected(self):
        db = _make_db([[0]] * 130)
        with pytest.raises(ValueError):
            db.bitmaps().slice_range(3, 10)

    def test_txn_range_inherits_when_aligned(self):
        db = _make_db([[0, 1]] * 130)
        parent = db.bitmaps()
        sub = db.txn_range(64, 130)
        inherited = sub._bitmaps_cache
        assert inherited is not None
        assert np.array_equal(inherited.words, parent.words[:, 1:3])
        # unaligned start: no inheritance, lazily rebuilt instead
        assert db.txn_range(65, 130)._bitmaps_cache is None

    def test_partition_bounds_align_when_large(self):
        db = _make_db([[0]] * 1000)
        bounds = db.partition_bounds(4)
        assert bounds[0] == 0 and bounds[-1] == 1000
        assert all(b % 64 == 0 for b in bounds[1:-1])
        parts = db.split(4)
        assert sum(len(p) for p in parts) == 1000


# -- shared bitmap cache ------------------------------------------------------


class TestBitmapCache:
    def test_equal_content_shares_one_build(self):
        clear_bitmap_cache()
        raw = [[0, 1], [1, 2], [0, 2]]
        a, b = _make_db(raw), _make_db(raw)
        assert a is not b
        assert get_shared_bitmaps(a) is get_shared_bitmaps(b)
        info = bitmap_cache_info()
        assert info["misses"] == 1 and info["hits"] >= 1

    def test_different_content_distinct(self):
        clear_bitmap_cache()
        a = _make_db([[0, 1]])
        b = _make_db([[0, 2]])
        assert get_shared_bitmaps(a) is not get_shared_bitmaps(b)


# -- kernel counters ----------------------------------------------------------


def test_kernel_counters_accumulate():
    before = kernel_snapshot().get("test-kernel", (0.0, 0))
    with kernel_timer("test-kernel"):
        pass
    seconds, calls = kernel_snapshot()["test-kernel"]
    assert calls == before[1] + 1
    assert seconds >= before[0]


def test_mining_records_kernels(toy_db):
    eclat(toy_db, 0.2)
    apriori(toy_db, 0.2)
    fpgrowth(toy_db, 0.2)
    snap = kernel_snapshot()
    for name in ("eclat-bitmap", "apriori-bitmap", "fptree-soa"):
        assert snap[name][1] >= 1


# -- miner equivalence: packed vs dense, SoA vs object tree -------------------


@given(
    raw=_txns,
    min_support=st.sampled_from([0.01, 0.1, 0.3, 0.6]),
    max_len=st.sampled_from([None, 1, 2, 4]),
)
@settings(max_examples=100, deadline=None)
def test_miners_equivalent_random(raw, min_support, max_len):
    db = _make_db(raw)
    reference = fpgrowth_object(db, min_support, max_len)
    assert fpgrowth(db, min_support, max_len) == reference
    assert eclat(db, min_support, max_len) == reference
    assert apriori(db, min_support, max_len) == reference
    assert eclat_dense(db, min_support, max_len) == reference
    assert apriori_dense(db, min_support, max_len) == reference


@pytest.mark.parametrize("fixture", ["pai_db", "supercloud_db", "philly_db"])
def test_soa_fptree_matches_object_tree_on_traces(fixture, request):
    db = request.getfixturevalue(fixture)
    config = MiningConfig()
    soa = fpgrowth(db, config.min_support, config.max_len)
    obj = fpgrowth_object(db, config.min_support, config.max_len)
    assert soa == obj


@pytest.mark.parametrize("fixture", ["pai_db", "supercloud_db", "philly_db"])
def test_packed_miners_match_dense_on_traces(fixture, request):
    db = request.getfixturevalue(fixture)
    assert eclat(db, 0.05, 4) == eclat_dense(db, 0.05, 4)
    assert apriori(db, 0.05, 3) == apriori_dense(db, 0.05, 3)


def test_count_candidates_matches_dense(supercloud_db):
    candidates = set(fpgrowth(supercloud_db, 0.05, 3))
    packed = count_candidates(supercloud_db, candidates)
    dense = count_candidates_dense(supercloud_db, candidates)
    assert packed == dense


# -- vectorised rule metrics vs compute_metrics -------------------------------


@given(raw=_txns, min_lift=st.sampled_from([0.0, 0.5, 1.0, 1.5]))
@settings(max_examples=80, deadline=None)
def test_batch_rule_metrics_match_scalar(raw, min_lift):
    db = _make_db(raw)
    counts = fpgrowth(db, 0.05, 4)
    itemsets = FrequentItemsets(counts, db.vocabulary, len(db), 0.05, 4)
    rules = generate_rules(itemsets, min_lift=min_lift)
    n = len(db)
    for rule in rules:
        count_xy = counts[rule.antecedent_ids | rule.consequent_ids]
        ref = compute_metrics(
            count_xy / n,
            counts[rule.antecedent_ids] / n,
            counts[rule.consequent_ids] / n,
        )
        assert rule.support == pytest.approx(ref.support, abs=1e-12)
        assert rule.confidence == pytest.approx(ref.confidence, abs=1e-12)
        assert rule.lift == pytest.approx(ref.lift, abs=1e-12)
        assert rule.leverage == pytest.approx(ref.leverage, abs=1e-12)
        if ref.conviction == float("inf"):
            assert rule.conviction == float("inf")
        else:
            assert rule.conviction == pytest.approx(ref.conviction, abs=1e-12)


def test_rules_identical_on_trace(supercloud_db):
    """Batch scoring is bit-identical to scalar scoring on a real trace."""
    counts = fpgrowth(supercloud_db, 0.05, 4)
    itemsets = FrequentItemsets(
        counts, supercloud_db.vocabulary, len(supercloud_db), 0.05, 4
    )
    rules = generate_rules(itemsets, min_lift=1.5)
    assert rules  # the planted associations must surface
    n = len(supercloud_db)
    for rule in rules:
        ref = compute_metrics(
            counts[rule.antecedent_ids | rule.consequent_ids] / n,
            counts[rule.antecedent_ids] / n,
            counts[rule.consequent_ids] / n,
        )
        assert rule.confidence == ref.confidence  # bit-identical, not approx
        assert rule.lift == ref.lift
        assert rule.leverage == ref.leverage


# -- from_encoded fast path ---------------------------------------------------


@given(raw=_txns)
@settings(max_examples=100, deadline=None)
def test_from_encoded_matches_generic_path(raw):
    vocab = ItemVocabulary()
    for i in range(_N_ITEMS):
        vocab.intern(f"item{i}")
    fast = TransactionDatabase.from_encoded(raw, vocab)
    # the generic path, forced by routing ids through Item objects
    slow = TransactionDatabase.from_itemsets(
        [[vocab.item_of(i) for i in t] for t in raw], vocabulary=vocab
    )
    assert np.array_equal(fast.indptr, slow.indptr)
    assert np.array_equal(fast.indices, slow.indices)


def test_from_itemsets_routes_encoded_input():
    vocab = ItemVocabulary()
    for i in range(3):
        vocab.intern(f"item{i}")
    # ints, numpy ints, sets and generators must all land on the fast path
    db = TransactionDatabase.from_itemsets(
        [[2, 0, 0], {1, 2}, (np.int64(0),), iter([1])], vocabulary=vocab
    )
    assert db.transaction(0).tolist() == [0, 2]
    assert db.transaction(1).tolist() == [1, 2]
    assert db.transaction(2).tolist() == [0]
    assert db.transaction(3).tolist() == [1]
