"""Shared fixtures: small generated traces, cached per test session.

Trace generation is the expensive part of most integration tests, so each
trace is generated once at a modest scale and shared.  Tests that need a
different scale or seed generate their own.
"""

from __future__ import annotations

import os

import pytest

from repro.core import MiningConfig, TransactionDatabase
from repro.traces import (
    PAIConfig,
    PhillyConfig,
    SuperCloudConfig,
    generate_pai,
    generate_philly,
    generate_supercloud,
    pai_preprocessor,
    philly_preprocessor,
    supercloud_preprocessor,
)

#: job counts chosen so every planted association clears the 5 % support
#: floor with margin, while the full suite stays fast
SMALL_N = 4000


@pytest.fixture(scope="session")
def pai_table():
    return generate_pai(PAIConfig(n_jobs=SMALL_N))


@pytest.fixture(scope="session")
def supercloud_table():
    return generate_supercloud(SuperCloudConfig(n_jobs=SMALL_N))


@pytest.fixture(scope="session")
def philly_table():
    return generate_philly(PhillyConfig(n_jobs=SMALL_N))


@pytest.fixture(scope="session")
def pai_db(pai_table):
    return pai_preprocessor().run(pai_table).database


@pytest.fixture(scope="session")
def supercloud_db(supercloud_table):
    return supercloud_preprocessor().run(supercloud_table).database


@pytest.fixture(scope="session")
def philly_db(philly_table):
    return philly_preprocessor().run(philly_table).database


@pytest.fixture(scope="session")
def default_config():
    return MiningConfig()


@pytest.fixture(scope="session", autouse=True)
def _reap_preexisting_segments():
    """Start from a clean slate: segments orphaned by earlier runs are
    not this session's leaks."""
    from repro.shm.segment import gc_stale_segments

    gc_stale_segments()


@pytest.fixture(autouse=True)
def shm_leak_check():
    """Fail any test that leaks a shared-memory segment.

    A segment whose owner pid is dead is a leak outright (serve/chaos
    tests kill workers; their segments must be reaped).  A rule-plane
    segment still owned by *this* process means whoever published it
    (a cluster or follower under test) forgot to unlink on the way out.
    Database segments owned by this live process are the mining lease
    cache and are allowed to persist across tests.
    """
    yield
    from repro.shm.segment import _pid_alive, list_segments

    leaked = []
    for name in list_segments():
        parts = name.split(".")
        if len(parts) < 5:
            continue
        try:
            owner = int(parts[3])
        except ValueError:
            continue
        if not _pid_alive(owner):
            leaked.append(f"{name} (dead owner)")
        elif owner == os.getpid() and parts[1] == "r":
            leaked.append(f"{name} (rule plane not unlinked)")
    assert not leaked, f"leaked shm segments: {leaked}"


@pytest.fixture()
def toy_db() -> TransactionDatabase:
    """The classic textbook market-basket example."""
    return TransactionDatabase.from_itemsets(
        [
            ["bread", "milk"],
            ["bread", "diapers", "beer", "eggs"],
            ["milk", "diapers", "beer", "cola"],
            ["bread", "milk", "diapers", "beer"],
            ["bread", "milk", "diapers", "cola"],
        ]
    )
