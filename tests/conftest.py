"""Shared fixtures: small generated traces, cached per test session.

Trace generation is the expensive part of most integration tests, so each
trace is generated once at a modest scale and shared.  Tests that need a
different scale or seed generate their own.
"""

from __future__ import annotations

import pytest

from repro.core import MiningConfig, TransactionDatabase
from repro.traces import (
    PAIConfig,
    PhillyConfig,
    SuperCloudConfig,
    generate_pai,
    generate_philly,
    generate_supercloud,
    pai_preprocessor,
    philly_preprocessor,
    supercloud_preprocessor,
)

#: job counts chosen so every planted association clears the 5 % support
#: floor with margin, while the full suite stays fast
SMALL_N = 4000


@pytest.fixture(scope="session")
def pai_table():
    return generate_pai(PAIConfig(n_jobs=SMALL_N))


@pytest.fixture(scope="session")
def supercloud_table():
    return generate_supercloud(SuperCloudConfig(n_jobs=SMALL_N))


@pytest.fixture(scope="session")
def philly_table():
    return generate_philly(PhillyConfig(n_jobs=SMALL_N))


@pytest.fixture(scope="session")
def pai_db(pai_table):
    return pai_preprocessor().run(pai_table).database


@pytest.fixture(scope="session")
def supercloud_db(supercloud_table):
    return supercloud_preprocessor().run(supercloud_table).database


@pytest.fixture(scope="session")
def philly_db(philly_table):
    return philly_preprocessor().run(philly_table).database


@pytest.fixture(scope="session")
def default_config():
    return MiningConfig()


@pytest.fixture()
def toy_db() -> TransactionDatabase:
    """The classic textbook market-basket example."""
    return TransactionDatabase.from_itemsets(
        [
            ["bread", "milk"],
            ["bread", "diapers", "beer", "eggs"],
            ["milk", "diapers", "beer", "cola"],
            ["bread", "milk", "diapers", "beer"],
            ["bread", "milk", "diapers", "cola"],
        ]
    )
