"""Unit tests for the FrequentItemsets container."""

import pytest

from repro.core import (
    FrequentItemsets,
    MiningConfig,
    mine_frequent_itemsets,
)


@pytest.fixture()
def fis(toy_db):
    return mine_frequent_itemsets(toy_db, MiningConfig(min_support=0.4, max_len=3))


class TestLookups:
    def test_count_and_support(self, fis, toy_db):
        bread = toy_db.vocabulary.id_of("bread")
        assert fis.count_of([bread]) == 4
        assert fis.support_of([bread]) == pytest.approx(0.8)

    def test_missing_itemset_raises_with_context(self, fis, toy_db):
        cola = toy_db.vocabulary.id_of("cola")
        eggs = toy_db.vocabulary.id_of("eggs")
        with pytest.raises(KeyError, match="not frequent"):
            fis.count_of([cola, eggs])

    def test_get_support_returns_none_when_absent(self, fis, toy_db):
        eggs = toy_db.vocabulary.id_of("eggs")
        assert fis.get_support([eggs]) is None

    def test_contains(self, fis, toy_db):
        bread = toy_db.vocabulary.id_of("bread")
        assert frozenset({bread}) in fis


class TestViews:
    def test_by_length_histogram(self, fis):
        hist = fis.by_length()
        assert set(hist) <= {1, 2, 3}
        assert sum(hist.values()) == len(fis)

    def test_items_sets_decode(self, fis):
        decoded = dict(fis.items_sets())
        assert len(decoded) == len(fis)
        assert all(0 < s <= 1 for s in decoded.values())

    def test_render(self, fis, toy_db):
        bread = toy_db.vocabulary.id_of("bread")
        milk = toy_db.vocabulary.id_of("milk")
        assert fis.render([bread, milk]) == "{bread, milk}"

    def test_top_filters_by_length(self, fis):
        top = fis.top(3, min_length=2)
        assert len(top) <= 3
        assert all(len(ids) >= 2 for ids, _ in top)
        counts = [c for _, c in top]
        assert counts == sorted(counts, reverse=True)


class TestEdgeCases:
    def test_empty(self, toy_db):
        fis = FrequentItemsets({}, toy_db.vocabulary, 0, 0.5)
        assert len(fis) == 0
        assert fis.by_length() == {}

    def test_negative_transactions_rejected(self, toy_db):
        with pytest.raises(ValueError):
            FrequentItemsets({}, toy_db.vocabulary, -1, 0.5)

    def test_repr(self, fis):
        assert "FrequentItemsets" in repr(fis)
