"""Unit + property tests for discretisation (Sec. III-E binning)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.preprocess import (
    BinningSpec,
    Discretizer,
    equal_frequency_edges,
    equal_width_edges,
)


class TestEdges:
    def test_equal_frequency_quartiles(self):
        values = np.arange(1, 101, dtype=float)
        edges = equal_frequency_edges(values, 4)
        assert len(edges) == 3
        assert edges[1] == pytest.approx(np.median(values))

    def test_equal_frequency_dedupes_ties(self):
        values = np.asarray([1.0] * 90 + [2.0] * 10)
        edges = equal_frequency_edges(values, 4)
        assert len(np.unique(edges)) == len(edges)

    def test_equal_width_uniform_spacing(self):
        edges = equal_width_edges(np.asarray([0.0, 100.0]), 4)
        assert edges.tolist() == [25.0, 50.0, 75.0]

    def test_constant_values_no_edges(self):
        assert equal_width_edges(np.asarray([5.0, 5.0]), 4).size == 0

    def test_empty(self):
        assert equal_frequency_edges(np.asarray([]), 4).size == 0


class TestDiscretizer:
    def test_quartile_labels(self):
        values = np.arange(100, dtype=float)
        labels = Discretizer().fit_transform(values)
        assert labels[0] == "Bin1"
        assert labels[99] == "Bin4"
        counts = {b: labels.count(b) for b in set(labels)}
        # roughly equal occupancy
        assert all(20 <= c <= 30 for c in counts.values())

    def test_nan_maps_to_none(self):
        d = Discretizer().fit(np.asarray([1.0, 2.0, 3.0, 4.0]))
        assert d.transform(np.asarray([np.nan]))[0] is None

    def test_zero_label(self):
        spec = BinningSpec(zero_label="0%")
        values = np.asarray([0.0] * 50 + list(range(1, 51)), dtype=float)
        labels = Discretizer(spec).fit_transform(values)
        assert labels[:50] == ["0%"] * 50
        assert labels[50] == "Bin1"

    def test_std_label_detected(self):
        # half the jobs request exactly 600 CPUs — the paper's Std bin
        spec = BinningSpec(std_label="Std", std_threshold=0.3)
        values = np.asarray([600.0] * 50 + list(np.linspace(1, 1200, 50)))
        d = Discretizer(spec).fit(values)
        assert d.std_value == 600.0
        labels = d.transform(np.asarray([600.0, 3.0]))
        assert labels[0] == "Std"
        assert labels[1] == "Bin1"

    def test_std_not_detected_below_threshold(self):
        spec = BinningSpec(std_label="Std", std_threshold=0.5)
        values = np.asarray([600.0] * 10 + list(np.linspace(1, 1200, 90)))
        assert Discretizer(spec).fit(values).std_value is None

    def test_zero_and_std_combined(self):
        spec = BinningSpec(zero_label="0GB", std_label="Std", std_threshold=0.3)
        values = np.asarray([0.0] * 30 + [8.0] * 40 + list(np.linspace(1, 32, 30)))
        d = Discretizer(spec).fit(values)
        out = d.transform(np.asarray([0.0, 8.0, 1.5]))
        assert out[0] == "0GB"
        assert out[1] == "Std"
        assert out[2].startswith("Bin")

    def test_ties_at_minimum_stay_in_bin1(self):
        # heavy mass at the minimum (zero queue delays) must label Bin1
        values = np.asarray([0.0] * 60 + list(np.linspace(1, 100, 40)))
        labels = Discretizer().fit_transform(values)
        assert labels[0] == "Bin1"

    def test_max_value_in_top_bin(self):
        values = np.linspace(0, 100, 101)
        d = Discretizer().fit(values)
        assert d.transform(np.asarray([100.0]))[0] == f"Bin{d.n_regular_bins()}"

    def test_transform_before_fit_raises(self):
        with pytest.raises(RuntimeError):
            Discretizer().transform(np.asarray([1.0]))

    def test_bin_ranges_cover_data(self):
        values = np.linspace(10, 50, 100)
        d = Discretizer().fit(values)
        ranges = d.bin_ranges()
        assert ranges["Bin1"][0] == pytest.approx(10.0)
        assert ranges[f"Bin{d.n_regular_bins()}"][1] == pytest.approx(50.0)

    def test_bin_ranges_include_specials(self):
        spec = BinningSpec(zero_label="0%", std_label="Std", std_threshold=0.2)
        values = np.asarray([0.0] * 30 + [7.0] * 30 + list(np.linspace(1, 20, 40)))
        d = Discretizer(spec).fit(values)
        ranges = d.bin_ranges()
        assert ranges["0%"] == (0.0, 0.0)
        assert ranges["Std"] == (7.0, 7.0)

    def test_equal_width_scheme(self):
        spec = BinningSpec(scheme="equal_width")
        values = np.asarray([0.0, 1.0, 2.0, 100.0])
        labels = Discretizer(spec).fit_transform(values)
        # long tail: low values crowd Bin1 (the paper's argument against
        # equal width for runtime-like features)
        assert labels[:3] == ["Bin1", "Bin1", "Bin1"]
        assert labels[3] == "Bin4"

    def test_invalid_spec(self):
        with pytest.raises(ValueError):
            BinningSpec(n_bins=0)
        with pytest.raises(ValueError):
            BinningSpec(std_threshold=0.0)
        with pytest.raises(ValueError):
            BinningSpec(scheme="fancy")


# -- properties -------------------------------------------------------------------

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(values=st.lists(finite_floats, min_size=1, max_size=200))
@settings(max_examples=100, deadline=None)
def test_every_value_gets_a_label(values):
    arr = np.asarray(values)
    labels = Discretizer().fit_transform(arr)
    assert len(labels) == len(values)
    assert all(label is not None for label in labels)


@given(values=st.lists(finite_floats, min_size=4, max_size=200))
@settings(max_examples=100, deadline=None)
def test_labels_monotone_in_value(values):
    """Sorting values must sort their bin indices (monotone binning)."""
    arr = np.sort(np.asarray(values))
    labels = Discretizer().fit_transform(arr)
    indices = [int(label[3:]) for label in labels]
    assert indices == sorted(indices)


@given(
    values=st.lists(finite_floats, min_size=10, max_size=300),
    n_bins=st.integers(2, 8),
)
@settings(max_examples=100, deadline=None)
def test_equal_frequency_balance(values, n_bins):
    """With all-distinct values, no bin exceeds ~2/n of the mass."""
    arr = np.asarray(sorted(set(values)), dtype=float)
    if arr.size < n_bins:
        return
    labels = Discretizer(BinningSpec(n_bins=n_bins)).fit_transform(arr)
    counts = {b: labels.count(b) for b in set(labels)}
    assert max(counts.values()) <= int(np.ceil(2.2 * arr.size / n_bins))


class TestZeroMinRegression:
    """The zero special bin must win over Bin1 when the minimum is 0.

    With an all-zero minimum and heavy ties, quantile edges collapse onto
    the minimum; ``searchsorted(side="right")`` then lands exact zeros
    past the collapsed duplicate edges.  Both the fit-min clamp and the
    zero overlay apply to the same rows — the zero label must take
    precedence over Bin1 in every transform path.
    """

    VALUES = np.asarray([0.0, 0.0, 0.0, 0.0, 5.0, 5.0, 5.0, 9.0])

    def _fitted(self):
        return Discretizer(BinningSpec(zero_label="0GB")).fit(self.VALUES)

    def test_zero_wins_over_bin1(self):
        d = self._fitted()
        labels = d.transform(self.VALUES)
        assert labels[:4] == ["0GB"] * 4
        assert "Bin1" not in labels[:4]

    def test_codes_match_rowwise(self):
        d = self._fitted()
        assert d.transform(self.VALUES) == d.transform_rowwise(self.VALUES)

    def test_holdout_zero_still_special(self):
        # zeros seen only at transform time (not fit) get the same label
        d = Discretizer(BinningSpec(zero_label="0GB")).fit(
            np.asarray([0.0, 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0])
        )
        holdout = np.asarray([0.0, 0.5, 7.0, np.nan])
        assert d.transform(holdout) == d.transform_rowwise(holdout)
        assert d.transform(holdout)[0] == "0GB"

    def test_fit_min_clamp_without_zero_label(self):
        # nonzero minimum with collapsed edges: ties at the min stay Bin1
        values = np.asarray([2.0, 2.0, 2.0, 2.0, 5.0, 5.0, 5.0, 9.0])
        d = Discretizer().fit(values)
        labels = d.transform(values)
        assert labels[:4] == ["Bin1"] * 4
        assert labels == d.transform_rowwise(values)

    def test_code_labels_roundtrip(self):
        d = self._fitted()
        codes = d.transform_codes(self.VALUES)
        labels = d.code_labels()
        assert [labels[c] for c in codes] == d.transform(self.VALUES)
