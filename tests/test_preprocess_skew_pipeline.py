"""Unit tests for the skew filter and the composed pipeline."""

import pytest

from repro.core import Item, TransactionDatabase
from repro.dataframe import ColumnTable
from repro.preprocess import (
    FeatureSpec,
    GroupingSpec,
    TierSpec,
    TracePreprocessor,
    drop_skewed_items,
    skewed_item_ids,
)


class TestSkewFilter:
    def test_drops_over_threshold(self):
        db = TransactionDatabase.from_itemsets(
            [["common", "rare"]] + [["common"]] * 8 + [["other"]]
        )
        filtered, dropped = drop_skewed_items(db, max_share=0.8)
        assert [i.render() for i in dropped] == ["common"]
        assert filtered.support_count(["common"]) == 0
        assert filtered.support_count(["rare"]) == 1
        # |D| unchanged → supports keep their denominators
        assert len(filtered) == len(db)

    def test_exactly_at_threshold_kept(self):
        db = TransactionDatabase.from_itemsets([["x"]] * 8 + [["y"]] * 2)
        filtered, dropped = drop_skewed_items(db, max_share=0.8)
        assert dropped == []  # 80 % is not "> 80 %"

    def test_no_skew_no_change(self):
        db = TransactionDatabase.from_itemsets([["a"], ["b"]])
        filtered, dropped = drop_skewed_items(db)
        assert dropped == []
        assert filtered is db

    def test_empty_db(self):
        db = TransactionDatabase.from_itemsets([])
        assert skewed_item_ids(db) == []

    def test_invalid_share(self):
        db = TransactionDatabase.from_itemsets([["a"]])
        with pytest.raises(ValueError):
            skewed_item_ids(db, max_share=0.0)


@pytest.fixture()
def raw_table():
    users = ["heavy"] * 12 + ["mid"] * 5 + ["light"] * 3
    return ColumnTable.from_dict(
        {
            "user": users,
            "model": ["resnet", "bert"] * 10,
            "runtime": list(range(20)),
            "failed": [i % 4 == 0 for i in range(20)],
        }
    )


class TestTracePreprocessor:
    def test_full_pipeline(self, raw_table):
        pre = TracePreprocessor(
            features=[
                FeatureSpec("user_tier", kind="label"),
                FeatureSpec("model"),
                FeatureSpec("runtime", item_feature="Runtime"),
                FeatureSpec("failed", kind="flag", true_label="Failed"),
            ],
            tier_specs=[
                TierSpec("user", "user_tier", frequent_label="Freq User",
                         moderate_label="Mod User", rare_label="Rare User")
            ],
            grouping_specs=[GroupingSpec("model")],
        )
        result = pre.run(raw_table)
        db = result.database
        assert len(db) == 20
        rendered = {i.render() for i in db.vocabulary}
        assert "Freq User" in rendered
        assert "model = CV" in rendered and "model = NLP" in rendered
        assert "Failed" in rendered
        # provenance exposed
        assert "runtime" in result.bin_ranges
        assert "user" in result.tiers
        assert "PreprocessResult" in result.summary()

    def test_skew_filter_applied(self):
        table = ColumnTable.from_dict(
            {"flag": [True] * 19 + [False], "x": list(range(20))}
        )
        pre = TracePreprocessor(
            features=[
                FeatureSpec("flag", kind="flag", true_label="Common"),
                FeatureSpec("x"),
            ]
        )
        result = pre.run(table)
        assert [i.render() for i in result.dropped_items] == ["Common"]
        assert result.database.support_count([Item.flag("Common")]) == 0

    def test_tier_on_non_categorical_rejected(self, raw_table):
        pre = TracePreprocessor(
            features=[FeatureSpec("runtime")],
            tier_specs=[TierSpec("runtime", "tier_out")],
        )
        with pytest.raises(TypeError):
            pre.run(raw_table)

    def test_grouping_on_non_categorical_rejected(self, raw_table):
        pre = TracePreprocessor(
            features=[FeatureSpec("runtime")],
            grouping_specs=[GroupingSpec("runtime")],
        )
        with pytest.raises(TypeError):
            pre.run(raw_table)

    def test_requires_features(self):
        with pytest.raises(ValueError):
            TracePreprocessor(features=[])

    def test_source_table_not_mutated(self, raw_table):
        names_before = list(raw_table.column_names)
        TracePreprocessor(
            features=[FeatureSpec("runtime")],
            tier_specs=[TierSpec("user", "user_tier")],
        ).run(raw_table)
        assert raw_table.column_names == names_before
