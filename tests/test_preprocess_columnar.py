"""Columnar ingest equivalence: vectorised paths vs their legacy oracles.

The columnar ingest kernel (integer-coded binning/encoding, vectorised
tier columns, cached preprocess stage, batched trace generation) must be
an *exact* refactoring of the per-row string-label pipeline: on any
table, :meth:`TracePreprocessor.run` and :meth:`~.run_legacy` produce
byte-identical transaction databases — same CSR arrays, same vocabulary
interning order, same content fingerprint.
"""

import numpy as np
import pytest

from repro.dataframe import CategoricalColumn, ColumnTable, NumericColumn
from repro.preprocess import (
    BinningSpec,
    FeatureSpec,
    TracePreprocessor,
    TransactionEncoder,
    clear_preprocess_cache,
    preprocess_cache_stats,
)
from repro.preprocess.pipeline import TierSpec
from repro.traces import (
    PAIConfig,
    generate_pai,
    pai_preprocessor,
    philly_preprocessor,
    supercloud_preprocessor,
)


def assert_db_equal(a, b):
    assert np.array_equal(a.indptr, b.indptr)
    assert np.array_equal(a.indices, b.indices)
    assert [str(i) for i in a.vocabulary] == [str(i) for i in b.vocabulary]
    assert a.fingerprint() == b.fingerprint()


# --------------------------------------------------------------------------
# full pipeline: vectorised == legacy on all three traces
# --------------------------------------------------------------------------

class TestPipelineEquivalence:
    def test_pai(self, pai_table):
        pre = pai_preprocessor()
        vec = pre.run(pai_table, use_cache=False)
        legacy = pre.run_legacy(pai_table)
        assert_db_equal(vec.database, legacy.database)
        assert vec.dropped_items == legacy.dropped_items
        assert vec.bin_ranges == legacy.bin_ranges

    def test_supercloud(self, supercloud_table):
        pre = supercloud_preprocessor()
        vec = pre.run(supercloud_table, use_cache=False)
        legacy = pre.run_legacy(supercloud_table)
        assert_db_equal(vec.database, legacy.database)
        assert vec.dropped_items == legacy.dropped_items

    def test_philly(self, philly_table):
        pre = philly_preprocessor()
        vec = pre.run(philly_table, use_cache=False)
        legacy = pre.run_legacy(philly_table)
        assert_db_equal(vec.database, legacy.database)
        assert vec.dropped_items == legacy.dropped_items

    def test_pai_with_model_column(self, pai_table):
        pre = pai_preprocessor(include_model=True)
        sub = pai_table.filter_mask(pai_table["model_name"].codes >= 0)
        vec = pre.run(sub, use_cache=False)
        assert_db_equal(vec.database, pre.run_legacy(sub).database)

    def test_tier_columns_match_legacy(self, pai_table):
        pre = pai_preprocessor()
        vec = pre.run(pai_table, use_cache=False)
        legacy = pre.run_legacy(pai_table)
        for name in ("user_tier", "group_tier"):
            v, l = vec.table[name], legacy.table[name]
            assert v.categories == l.categories
            assert np.array_equal(v.codes, l.codes)


# --------------------------------------------------------------------------
# randomised BinningSpec sweep: int-coded encoding == string-label encoding
# --------------------------------------------------------------------------

def _random_spec(rng: np.random.Generator) -> BinningSpec:
    kwargs = {"n_bins": int(rng.integers(2, 12))}
    if rng.random() < 0.4:
        kwargs["zero_label"] = "0X"
    if rng.random() < 0.4:
        kwargs["std_label"] = "Std"
        kwargs["std_threshold"] = float(rng.uniform(0.1, 0.5))
    if rng.random() < 0.3:
        kwargs["scheme"] = "equal_width"
    return BinningSpec(**kwargs)


class TestRandomisedEncoding:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_specs_over_trace_columns(self, pai_table, seed):
        rng = np.random.default_rng(seed)
        numeric = [
            name
            for name in pai_table.column_names
            if isinstance(pai_table[name], NumericColumn)
        ]
        chosen = rng.choice(numeric, size=3, replace=False)
        features = [
            FeatureSpec(str(name), item_feature=str(name), binning=_random_spec(rng))
            for name in chosen
        ]
        vec = TransactionEncoder(features)
        legacy = TransactionEncoder(features).fit(pai_table)
        assert_db_equal(
            vec.fit_transform(pai_table), legacy.transform_legacy(pai_table)
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_heavy_tie_columns(self, seed):
        # many repeated values → collapsed quantile edges, the regime where
        # searchsorted and the scalar elif chain could disagree
        rng = np.random.default_rng(100 + seed)
        n = 500
        values = rng.choice([0.0, 0.0, 1.0, 5.0, 5.0, 9.0, np.nan], size=n)
        table = ColumnTable({"x": NumericColumn(values)})
        spec = BinningSpec(zero_label="0X", std_label="Std", std_threshold=0.3)
        features = [FeatureSpec("x", item_feature="X", binning=spec)]
        vec = TransactionEncoder(features)
        legacy = TransactionEncoder(features).fit(table)
        assert_db_equal(
            vec.fit_transform(table), legacy.transform_legacy(table)
        )


# --------------------------------------------------------------------------
# vectorised tier columns
# --------------------------------------------------------------------------

class TestTierColumns:
    def test_output_column_collision_raises(self):
        table = ColumnTable(
            {
                "user": CategoricalColumn.from_values(["a", "b", "a", "b"] * 25),
                "user_tier": NumericColumn(np.zeros(100)),
            }
        )
        pre = TracePreprocessor(
            features=[FeatureSpec("user_tier", kind="label")],
            tier_specs=[TierSpec("user", "user_tier")],
        )
        with pytest.raises(ValueError, match="user_tier"):
            pre.run(table, use_cache=False)


# --------------------------------------------------------------------------
# preprocess result cache
# --------------------------------------------------------------------------

class TestPreprocessCache:
    def test_hit_on_same_content(self, pai_table):
        clear_preprocess_cache()
        pre = pai_preprocessor()
        first, status1 = pre.run_with_status(pai_table)
        second, status2 = pre.run_with_status(pai_table.copy())
        assert (status1, status2) == ("miss", "hit")
        assert second is first
        stats = preprocess_cache_stats()
        assert stats.hits >= 1 and stats.misses >= 1

    def test_off_when_disabled(self, pai_table):
        clear_preprocess_cache()
        pre = pai_preprocessor()
        _, status = pre.run_with_status(pai_table, use_cache=False)
        assert status == "off"
        assert preprocess_cache_stats().size == 0

    def test_distinct_specs_miss(self, pai_table):
        clear_preprocess_cache()
        r1, s1 = pai_preprocessor().run_with_status(pai_table)
        r2, s2 = pai_preprocessor(include_model=True).run_with_status(pai_table)
        assert (s1, s2) == ("miss", "miss")
        assert r1 is not r2

    def test_legacy_path_bypasses_cache(self, pai_table):
        clear_preprocess_cache()
        before = preprocess_cache_stats()
        pai_preprocessor().run_legacy(pai_table)
        after = preprocess_cache_stats()
        # counters are lifetime; the legacy path must not move them
        assert (after.hits, after.misses) == (before.hits, before.misses)
        assert after.size == 0

    def test_spec_key_deterministic(self):
        assert pai_preprocessor().spec_key() == pai_preprocessor().spec_key()
        assert (
            pai_preprocessor().spec_key()
            != pai_preprocessor(include_model=True).spec_key()
        )


# --------------------------------------------------------------------------
# table fingerprint (the cache key's content half)
# --------------------------------------------------------------------------

class TestTableFingerprint:
    def test_stable_across_copies(self, pai_table):
        assert pai_table.fingerprint() == pai_table.copy().fingerprint()

    def test_changes_on_edit(self):
        t1 = ColumnTable({"x": NumericColumn(np.arange(10.0))})
        t2 = t1.copy()
        t2.add_column("y", NumericColumn(np.zeros(10)))
        assert t1.fingerprint() != t2.fingerprint()
        t3 = ColumnTable({"x": NumericColumn(np.arange(10.0) + 1)})
        assert t1.fingerprint() != t3.fingerprint()


# --------------------------------------------------------------------------
# columnar PAI generation
# --------------------------------------------------------------------------

class TestColumnarGeneration:
    @pytest.fixture(scope="class")
    def tables(self):
        obj = generate_pai(PAIConfig(n_jobs=4000, use_scheduler=False))
        col = generate_pai(PAIConfig(n_jobs=4000, use_scheduler=False, columnar=True))
        return obj, col

    def test_schema_matches_object_path(self, tables):
        obj, col = tables
        assert obj.column_names == col.column_names
        for name in obj.column_names:
            assert type(obj[name]) is type(col[name]), name

    def test_deterministic(self, tables):
        _, col = tables
        again = generate_pai(
            PAIConfig(n_jobs=4000, use_scheduler=False, columnar=True)
        )
        assert col.fingerprint() == again.fingerprint()

    def test_archetype_mixture_close(self, tables):
        obj, col = tables
        n = len(obj)
        for table in (obj, col):
            arch = table["archetype"]
            share = {
                c: float(arch.equals_scalar(c).mean()) for c in arch.categories
            }
            assert share["debug_template"] == pytest.approx(0.30, abs=0.05)
            assert share["production_train"] == pytest.approx(0.33, abs=0.05)
        assert n == len(col)

    def test_zero_sm_mass(self, tables):
        # Fig. 4: PAI has a large exactly-zero SM-utilisation mass
        _, col = tables
        zero_share = float((col["sm_util"].values == 0.0).mean())
        assert 0.35 <= zero_share <= 0.65

    def test_preprocess_equivalence_on_columnar_table(self, tables):
        _, col = tables
        pre = pai_preprocessor()
        assert_db_equal(
            pre.run(col, use_cache=False).database, pre.run_legacy(col).database
        )

    def test_columnar_with_scheduler_rejected(self):
        with pytest.raises(ValueError, match="scheduler"):
            PAIConfig(columnar=True, use_scheduler=True)
