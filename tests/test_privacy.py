"""Tests for the differentially private itemset release."""

import numpy as np
import pytest

from repro.core import MiningConfig, TransactionDatabase, mine_frequent_itemsets
from repro.privacy import DPConfig, dp_mine_frequent_itemsets, recovery_f1


@pytest.fixture()
def db():
    rng = np.random.default_rng(5)
    txns = []
    for _ in range(600):
        items = []
        if rng.random() < 0.6:
            items.append("common")
        if rng.random() < 0.3:
            items.append("mid")
        if items and rng.random() < 0.7:
            items.append("tail")
        txns.append(items or ["common"])
    return TransactionDatabase.from_itemsets(txns)


CFG = MiningConfig(min_support=0.2, max_len=3, min_lift=1.0)


class TestRelease:
    def test_high_epsilon_recovers_truth(self, db):
        reference = mine_frequent_itemsets(db, CFG)
        result = dp_mine_frequent_itemsets(db, CFG, DPConfig(epsilon=1e6, seed=1))
        assert recovery_f1(result.itemsets, reference) == 1.0
        # counts within rounding of the true ones at negligible noise
        for itemset, count in result.itemsets.counts.items():
            assert abs(count - reference.counts[itemset]) <= 1

    def test_low_epsilon_degrades(self, db):
        reference = mine_frequent_itemsets(db, CFG)
        scores = []
        for epsilon in (1e6, 10.0, 0.05):
            f1s = [
                recovery_f1(
                    dp_mine_frequent_itemsets(
                        db, CFG, DPConfig(epsilon=epsilon, seed=s)
                    ).itemsets,
                    reference,
                )
                for s in range(5)
            ]
            scores.append(float(np.mean(f1s)))
        assert scores[0] >= scores[1] >= scores[2] - 0.05
        assert scores[0] > scores[2]

    def test_released_counts_bounded(self, db):
        result = dp_mine_frequent_itemsets(db, CFG, DPConfig(epsilon=0.5, seed=2))
        for count in result.itemsets.counts.values():
            assert 0 <= count <= len(db)

    def test_noise_scale_accounting(self, db):
        result = dp_mine_frequent_itemsets(db, CFG, DPConfig(epsilon=2.0, seed=3))
        assert result.noise_scale == pytest.approx(result.n_candidates / 2.0)

    def test_deterministic_for_seed(self, db):
        a = dp_mine_frequent_itemsets(db, CFG, DPConfig(epsilon=1.0, seed=4))
        b = dp_mine_frequent_itemsets(db, CFG, DPConfig(epsilon=1.0, seed=4))
        assert a.itemsets.counts == b.itemsets.counts

    def test_empty_database(self):
        empty = TransactionDatabase.from_itemsets([])
        result = dp_mine_frequent_itemsets(empty, CFG, DPConfig(epsilon=1.0))
        assert len(result.itemsets) == 0
        assert result.n_candidates == 0

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            DPConfig(epsilon=0.0)
        with pytest.raises(ValueError):
            DPConfig(candidate_fraction=0.0)


class TestRecoveryF1:
    def test_perfect(self, db):
        fis = mine_frequent_itemsets(db, CFG)
        assert recovery_f1(fis, fis) == 1.0

    def test_empty_both(self, db):
        from repro.core import FrequentItemsets

        empty = FrequentItemsets({}, db.vocabulary, len(db), 0.2)
        assert recovery_f1(empty, empty) == 1.0

    def test_no_overlap(self, db):
        from repro.core import FrequentItemsets

        fis = mine_frequent_itemsets(db, CFG)
        empty = FrequentItemsets({}, db.vocabulary, len(db), 0.2)
        assert recovery_f1(empty, fis) == 0.0
