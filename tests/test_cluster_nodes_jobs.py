"""Unit tests for node capacity accounting and the job model."""

import pytest

from repro.cluster import (
    BehaviorProfile,
    ClusterSpec,
    JobRecord,
    JobRequest,
    JobStatus,
    Node,
    NodeSpec,
    build_nodes,
)


@pytest.fixture()
def spec():
    return NodeSpec("v100", "V100", n_gpus=8, n_cpus=96, mem_gb=512, gpu_mem_gb=32)


class TestNode:
    def test_starts_full(self, spec):
        node = Node(spec, 0)
        assert node.free_gpus == 8
        assert node.free_cpus == 96
        assert node.name == "v100-0"

    def test_allocate_release_roundtrip(self, spec):
        node = Node(spec, 0)
        node.allocate(4, 10, 100.0)
        assert node.free_gpus == 4
        node.release(4, 10, 100.0)
        assert node.free_gpus == 8
        assert node.free_mem_gb == 512

    def test_overallocation_rejected(self, spec):
        node = Node(spec, 0)
        with pytest.raises(RuntimeError):
            node.allocate(9, 0, 0)

    def test_overrelease_rejected(self, spec):
        node = Node(spec, 0)
        with pytest.raises(RuntimeError):
            node.release(1, 0, 0)

    def test_fits_respects_every_dimension(self, spec):
        node = Node(spec, 0)
        assert node.fits(8, 96, 512)
        assert not node.fits(1, 97, 0)
        assert not node.fits(1, 0, 513)

    def test_invalid_spec_rejected(self):
        with pytest.raises(ValueError):
            NodeSpec("bad", "X", n_gpus=-1, n_cpus=1, mem_gb=1)


class TestClusterSpec:
    def test_totals(self, spec):
        t4 = NodeSpec("t4", "T4", n_gpus=4, n_cpus=48, mem_gb=256)
        cluster = ClusterSpec.of((spec, 2), (t4, 3))
        assert cluster.total_gpus == 8 * 2 + 4 * 3
        assert cluster.gpus_by_type() == {"V100": 16, "T4": 12}

    def test_build_nodes_materialises_counts(self, spec):
        nodes = build_nodes(ClusterSpec.of((spec, 3)))
        assert len(nodes) == 3
        assert {n.name for n in nodes} == {"v100-0", "v100-1", "v100-2"}


class TestJobModel:
    def test_status_values_match_traces(self):
        assert JobStatus.FAILED.value == "failed"
        assert JobStatus.KILLED.value == "killed"
        assert JobStatus.COMPLETED.value == "completed"

    def test_behavior_profile_validation(self):
        with pytest.raises(ValueError):
            BehaviorProfile(sm_util_mean=150.0)
        with pytest.raises(ValueError):
            BehaviorProfile(burstiness=2.0)

    def test_request_validation(self):
        with pytest.raises(ValueError):
            JobRequest(job_id=0, user="u", submit_time=0, runtime=-5)
        with pytest.raises(ValueError):
            JobRequest(job_id=0, user="u", submit_time=0, runtime=5, n_gpus=-1)

    def test_record_row_merges_everything(self):
        req = JobRequest(
            job_id=7,
            user="alice",
            submit_time=100.0,
            runtime=50.0,
            n_gpus=2,
            status=JobStatus.FAILED,
            extras={"custom": "x"},
        )
        rec = JobRecord(
            request=req,
            start_time=130.0,
            end_time=180.0,
            node="v100-0",
            assigned_gpu_type="V100",
            telemetry={"sm_util": 0.0},
        )
        row = rec.as_row()
        assert row["queue_delay"] == 30.0
        assert row["runtime"] == 50.0
        assert row["status"] == "failed"
        assert row["sm_util"] == 0.0
        assert row["custom"] == "x"
        assert rec.status is JobStatus.FAILED
