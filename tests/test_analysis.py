"""Tests for the workflow orchestration, report formatting and case studies."""

import pytest

from repro.analysis import (
    AnalysisResult,
    InterpretableAnalysis,
    RuleTable,
    analyze_trace,
    failure_study,
    format_rule_table,
    full_case_study,
    misc_study,
    select_diverse_rules,
    underutilization_study,
)
from repro.core import MiningConfig, mine_keyword_rules
from repro.traces import get_trace


@pytest.fixture(scope="module")
def sc_analysis(supercloud_table):
    return analyze_trace("supercloud", table=supercloud_table)


class TestWorkflow:
    def test_runs_all_keywords(self, sc_analysis):
        assert set(sc_analysis.keyword_results) == {
            "underutilization", "failure", "killed",
        }

    def test_itemsets_shared_across_keywords(self, sc_analysis):
        assert len(sc_analysis.itemsets) > 100

    def test_getitem_and_missing_key(self, sc_analysis):
        assert sc_analysis["failure"].keyword.render() == "Failed"
        with pytest.raises(KeyError, match="no keyword study"):
            sc_analysis["ghost"]

    def test_summary_text(self, sc_analysis):
        text = sc_analysis.summary()
        assert "transactions : " in text
        assert "underutilization" in text

    def test_workflow_on_custom_keywords(self, supercloud_table):
        workflow = InterpretableAnalysis(
            get_trace("supercloud").make_preprocessor(), MiningConfig()
        )
        result = workflow.run(supercloud_table, {"power": "GPU Power = Bin1"})
        assert "power" in result.keyword_results


class TestReport:
    def test_format_rule_table_labels(self, sc_analysis):
        table = format_rule_table(sc_analysis["failure"], "t", 4, 2)
        labels = [row.label for row in table.rows]
        assert labels == [f"C{i+1}" for i in range(len(table.cause_rows))] + [
            f"A{i+1}" for i in range(len(table.characteristic_rows))
        ]
        assert len(table.cause_rows) <= 4
        assert len(table.characteristic_rows) <= 2

    def test_table_renders_paper_columns(self, sc_analysis):
        table = format_rule_table(sc_analysis["failure"], "Failure rules", 3, 2)
        text = str(table)
        assert "Antecedent" in text and "Lift" in text
        assert "Failure rules" in text

    def test_select_diverse_rules_caps_and_orders(self, sc_analysis):
        rules = list(sc_analysis["underutilization"].characteristic)
        picked = select_diverse_rules(rules, 5)
        assert len(picked) <= 5
        lifts = [r.lift for r in picked]
        assert lifts == sorted(lifts, reverse=True)

    def test_select_diverse_rules_similarity(self, sc_analysis):
        rules = list(sc_analysis["underutilization"].characteristic)
        picked = select_diverse_rules(rules, 10, max_similarity=0.3)
        for i, a in enumerate(picked):
            for b in picked[i + 1:]:
                inter = len(a.item_ids & b.item_ids)
                union = len(a.item_ids | b.item_ids)
                assert inter / union <= 0.3

    def test_row_render_format(self, sc_analysis):
        table = format_rule_table(sc_analysis["failure"], "t", 1, 0)
        label, ant, cons, supp, conf, lift = table.rows[0].render()
        assert label == "C1"
        float(supp), float(conf), float(lift)  # parseable numbers

    def test_empty_ruleset_gives_empty_table(self, supercloud_db):
        empty = mine_keyword_rules(supercloud_db, "unobtainium", MiningConfig())
        table = format_rule_table(empty, "empty")
        assert table.rows == []

    def test_negative_max_rules_rejected(self, sc_analysis):
        with pytest.raises(ValueError):
            select_diverse_rules(list(sc_analysis["failure"].cause), -1)


class TestCaseStudies:
    def test_underutilization_study(self, supercloud_table, sc_analysis):
        _, table = underutilization_study("supercloud", analysis=sc_analysis)
        assert isinstance(table, RuleTable)
        assert table.rows
        assert "SuperCloud" in table.title
        # cause rows carry the keyword in the consequent
        for row in table.cause_rows:
            assert any(i.render() == "SM Util = 0%" for i in row.rule.consequent)

    def test_failure_study(self, sc_analysis):
        _, table = failure_study("supercloud", analysis=sc_analysis)
        for row in table.cause_rows:
            assert any(i.render() == "Failed" for i in row.rule.consequent)
        for row in table.characteristic_rows:
            assert any(i.render() == "Failed" for i in row.rule.antecedent)

    def test_misc_study_supercloud(self, supercloud_table):
        tables = misc_study("supercloud", table=supercloud_table)
        assert "killed" in tables

    def test_misc_study_philly(self, philly_table):
        tables = misc_study("philly", table=philly_table)
        assert "multi_gpu" in tables
        table = tables["multi_gpu"]
        assert table.rows

    def test_full_case_study_renders(self, philly_table):
        study = full_case_study("philly", table=philly_table)
        text = study.render()
        assert "Philly" in text
        assert "underutilization" in study.tables
        assert "failure" in study.tables
