"""Tests for the delta-maintained streaming bitmap window.

House style: the fast path is checked against two independent oracles —
the retained :class:`SlidingWindowMiner` (deque semantics) and
:class:`PackedBitmaps` popcounts built from the window's own snapshot.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MiningConfig
from repro.core.bitmap import PackedBitmaps
from repro.engine import MiningEngine
from repro.streaming import GRANULE, SlidingWindowMiner, StreamingBitmapWindow


def _random_transactions(seed: int, n: int, n_items: int = 12, max_len: int = 6):
    rng = np.random.default_rng(seed)
    out = []
    for _ in range(n):
        k = int(rng.integers(0, max_len + 1))
        out.append([f"f{int(i)}" for i in rng.choice(n_items, size=k, replace=False)])
    return out


def _reference_window(transactions, window_size):
    """The transactions a granule-aligned window of *window_size* retains."""
    kept = transactions[-window_size:] if window_size else []
    # eviction is granule-granular: drop whole leading granules until the
    # retained count fits, exactly like the window itself
    n = len(transactions)
    start = 0
    # simulate: sealed granules + partial, evict oldest granule while over
    while n - start > window_size:
        start += GRANULE
    return transactions[start:]


class TestWindowSemantics:
    def test_rounds_window_up_to_granules(self):
        assert StreamingBitmapWindow(1).window_size == GRANULE
        assert StreamingBitmapWindow(64).window_size == 64
        assert StreamingBitmapWindow(65).window_size == 128

    def test_rejects_bad_window_size(self):
        with pytest.raises(ValueError, match="window_size"):
            StreamingBitmapWindow(0)

    def test_len_and_bounds_track_granule_eviction(self):
        win = StreamingBitmapWindow(128)
        for k in range(300):
            win.observe([f"i{k % 7}"])
        # 300 seen, eviction keeps len in (window_size - 64, window_size]
        assert 64 < len(win) <= 128
        first, last = win.window_bounds()
        assert last == 300
        assert last - first == len(win)
        assert win.n_seen == 300

    def test_empty_window_support_raises(self):
        win = StreamingBitmapWindow(64)
        with pytest.raises(ValueError, match="empty window"):
            win.item_support("a")

    def test_unknown_item_support_zero(self):
        win = StreamingBitmapWindow(64)
        win.observe(["a"])
        assert win.item_support("ghost") == 0.0

    def test_rejects_out_of_vocabulary_encoded_ids(self):
        win = StreamingBitmapWindow(64)
        win.observe(["a"])
        with pytest.raises(ValueError, match="outside the vocabulary"):
            win.extend_encoded([[5]])


class TestSnapshotEquivalence:
    """snapshot() must equal the deque oracle fed the retained suffix."""

    @pytest.mark.parametrize("seed,n,window", [(0, 50, 64), (1, 200, 64),
                                               (2, 500, 128), (3, 991, 256)])
    def test_matches_sliding_window_miner(self, seed, n, window):
        txns = _random_transactions(seed, n)
        win = StreamingBitmapWindow(window)
        win.observe_many(txns)
        retained = _reference_window(txns, win.window_size)
        assert len(win) == len(retained)
        oracle = SlidingWindowMiner(
            window_size=max(1, len(retained)), vocabulary=win.vocabulary
        )
        oracle.observe_many(retained)
        a, b = win.snapshot(), oracle.snapshot()
        assert np.array_equal(a.indptr, b.indptr)
        assert np.array_equal(a.indices, b.indices)
        assert a.fingerprint() == b.fingerprint()

    def test_mine_equivalence(self):
        txns = _random_transactions(7, 300, n_items=8, max_len=5)
        win = StreamingBitmapWindow(128)
        win.observe_many(txns)
        retained = _reference_window(txns, win.window_size)
        oracle = SlidingWindowMiner(window_size=len(retained),
                                    vocabulary=win.vocabulary)
        oracle.observe_many(retained)
        config = MiningConfig(min_support=0.1)
        engine = MiningEngine(cache=False)
        ours = engine.mine(win.snapshot(), config)
        theirs = engine.mine(oracle.snapshot(), config)
        assert ours.counts == theirs.counts


class TestMaintainedCounts:
    """Incremental popcount deltas vs ground-truth PackedBitmaps."""

    @pytest.mark.parametrize("seed,n,window", [(11, 80, 64), (12, 400, 128)])
    def test_item_counts_match_bitmaps(self, seed, n, window):
        txns = _random_transactions(seed, n)
        win = StreamingBitmapWindow(window)
        win.observe_many(txns)
        bitmaps = PackedBitmaps.from_database(win.snapshot())
        assert np.array_equal(
            win.item_support_counts()[: len(win.vocabulary)],
            bitmaps.item_counts(),
        )

    def test_tracked_counts_maintained_across_seals_and_evictions(self):
        txns = _random_transactions(21, 640, n_items=10, max_len=5)
        win = StreamingBitmapWindow(128)
        win.observe_many(txns[:200])
        # track some itemsets mid-stream, then keep streaming: the counts
        # must stay correct through further seals AND granule evictions
        vocab_n = len(win.vocabulary)
        tracked = [[i] for i in range(vocab_n)]
        tracked += [[i, (i + 1) % vocab_n] for i in range(vocab_n - 1)]
        tracked += [[0, 1, 2], [3, 4, 5]]
        win.set_tracked(tracked)
        for lo in range(200, 640, 37):  # odd batch size: partial granules
            win.observe_many(txns[lo:lo + 37])
            counts = win.tracked_counts()
            bitmaps = PackedBitmaps.from_database(win.snapshot())
            expected = [bitmaps.support_count(sorted(t)) for t in tracked]
            assert counts.tolist() == expected

    def test_set_tracked_rejects_empty_and_unknown(self):
        win = StreamingBitmapWindow(64)
        win.observe(["a"])
        with pytest.raises(ValueError, match="non-empty"):
            win.set_tracked([[]])
        with pytest.raises(ValueError, match="outside the vocabulary"):
            win.set_tracked([[99]])

    def test_vocabulary_growth_preserves_counts(self):
        win = StreamingBitmapWindow(64)
        # start tiny, then blow past the initial 16-item capacity
        for k in range(40):
            win.observe([f"item{k}", "common"])
        bitmaps = PackedBitmaps.from_database(win.snapshot())
        assert np.array_equal(
            win.item_support_counts()[: len(win.vocabulary)],
            bitmaps.item_counts(),
        )
        assert win.item_support("common") == 1.0

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.lists(st.integers(0, 9), max_size=5), max_size=120),
           st.integers(1, 3))
    def test_property_counts_always_match_snapshot(self, raw, granules):
        win = StreamingBitmapWindow(granules * GRANULE)
        win.observe_many([[f"i{i}" for i in txn] for txn in raw])
        if len(win.vocabulary):
            bitmaps = PackedBitmaps.from_database(win.snapshot())
            assert np.array_equal(
                win.item_support_counts()[: len(win.vocabulary)],
                bitmaps.item_counts(),
            )
        first, last = win.window_bounds()
        assert last - first == len(win)
        assert len(win) <= win.window_size
