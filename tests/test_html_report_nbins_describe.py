"""Tests for the HTML report generator (and its SVG chart helper)."""

import pytest

from repro.analysis import extract_insights, full_case_study
from repro.analysis.html_report import render_html_report, svg_bar_chart


class TestSvgBarChart:
    def test_one_bar_per_entry(self):
        svg = svg_bar_chart({"a": 0.5, "b": 1.0})
        assert svg.count("<rect") == 2
        assert "50.0%" in svg and "100.0%" in svg

    def test_empty(self):
        assert svg_bar_chart({}) == "<svg/>"

    def test_labels_escaped(self):
        svg = svg_bar_chart({"<script>": 1.0})
        assert "<script>" not in svg
        assert "&lt;script&gt;" in svg

    def test_zero_values_render(self):
        svg = svg_bar_chart({"x": 0.0, "y": 1.0})
        assert svg.count("<rect") == 2


class TestHtmlReport:
    @pytest.fixture(scope="class")
    def study(self, philly_table):
        return full_case_study("philly", table=philly_table)

    def test_self_contained_document(self, study, philly_table):
        doc = render_html_report(study, table=philly_table)
        assert doc.startswith("<!doctype html>")
        assert doc.endswith("</html>")
        assert "http" not in doc.split("xmlns")[0]  # no external links in head
        assert "Philly" in doc

    def test_contains_rule_tables_and_figures(self, study, philly_table):
        doc = render_html_report(study, table=philly_table)
        assert doc.count("<table>") == len(study.tables)
        assert "<svg" in doc  # Fig. 4/5 analogues
        assert "exit status" in doc

    def test_insights_rendered(self, study, philly_table):
        insights = {
            "failure": extract_insights(study.analysis["failure"]),
        }
        doc = render_html_report(study, table=philly_table, insights=insights)
        assert 'class="insight"' in doc

    def test_without_table_skips_figures(self, study):
        doc = render_html_report(study)
        assert "Distributions" not in doc

    def test_writes_valid_file(self, study, philly_table, tmp_path):
        path = tmp_path / "report.html"
        path.write_text(render_html_report(study, table=philly_table))
        assert path.stat().st_size > 5_000
