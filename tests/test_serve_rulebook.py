"""Tests for RuleBook persistence: exact round trips, schema versioning."""

import json
import math
import random

import pytest

from repro.core import MiningConfig
from repro.core.items import Item, ItemVocabulary
from repro.core.rules import AssociationRule
from repro.serve import SCHEMA_VERSION, RuleBook, RuleBookSchemaError
from repro.traces import SuperCloudConfig, generate_supercloud, supercloud_preprocessor
from repro.analysis import InterpretableAnalysis


def random_rules(rng: random.Random, n_rules: int, n_items: int = 40):
    """Random but well-formed rules over a shared vocabulary.

    Metrics are arbitrary floats (not mutually consistent) on purpose:
    persistence must round-trip whatever values the rule carries,
    including the conviction = inf of exact implications.
    """
    vocabulary = ItemVocabulary(
        Item(f"F{k % 7}", f"v{k}") for k in range(n_items)
    )
    rules = []
    for _ in range(n_rules):
        size = rng.randint(2, 6)
        ids = rng.sample(range(n_items), size)
        cut = rng.randint(1, size - 1)
        antecedent_ids = frozenset(ids[:cut])
        consequent_ids = frozenset(ids[cut:])
        rules.append(
            AssociationRule(
                antecedent=vocabulary.items_of(antecedent_ids),
                consequent=vocabulary.items_of(consequent_ids),
                antecedent_ids=antecedent_ids,
                consequent_ids=consequent_ids,
                support=rng.random(),
                confidence=rng.random(),
                lift=rng.random() * 10,
                leverage=rng.random() - 0.5,
                conviction=math.inf if rng.random() < 0.2 else rng.random() * 5,
            )
        )
    return rules


class TestRoundTrip:
    def test_every_field_survives_bit_exact(self, tmp_path):
        # property-style: many random rules, every field compared exactly
        rng = random.Random(7)
        book = RuleBook(
            rules=random_rules(rng, 200),
            trace="pai",
            keywords={"failure": "Failed", "underutil": "SM Util = 0%"},
            config=MiningConfig(min_support=0.03, max_len=4),
            fingerprint="cafe" * 8,
            backend="auto:serial",
            n_transactions=12345,
        )
        path = tmp_path / "book.jsonl"
        book.save(path)
        loaded = RuleBook.load(path)

        assert len(loaded) == len(book)
        for original, restored in zip(book.rules, loaded.rules):
            assert restored.antecedent == original.antecedent
            assert restored.consequent == original.consequent
            assert restored.antecedent_ids == original.antecedent_ids
            assert restored.consequent_ids == original.consequent_ids
            for name in ("support", "confidence", "lift", "leverage"):
                assert getattr(restored, name) == getattr(original, name)
            if math.isinf(original.conviction):
                assert math.isinf(restored.conviction)
            else:
                assert restored.conviction == original.conviction
        assert loaded.trace == book.trace
        assert loaded.keywords == book.keywords
        assert loaded.config == book.config
        assert loaded.fingerprint == book.fingerprint
        assert loaded.backend == book.backend
        assert loaded.n_transactions == book.n_transactions

    def test_save_load_save_is_byte_stable(self, tmp_path):
        rng = random.Random(11)
        book = RuleBook(rules=random_rules(rng, 50))
        first, second = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        book.save(first)
        RuleBook.load(first).save(second)
        assert first.read_bytes() == second.read_bytes()

    def test_file_is_strict_json_lines(self, tmp_path):
        # even with inf conviction every line must parse as strict JSON
        rng = random.Random(3)
        rules = random_rules(rng, 30)
        assert any(math.isinf(r.conviction) for r in rules)
        path = tmp_path / "book.jsonl"
        RuleBook(rules=rules).save(path)
        for line in path.read_text().splitlines():
            json.loads(line)  # json.loads accepts Infinity; check the text
            assert "Infinity" not in line

    def test_id_space_is_canonical(self, tmp_path):
        # two books over the same rules mined through differently-ordered
        # vocabularies serialize identically
        rules = random_rules(random.Random(5), 20)
        shuffled = list(rules)
        random.Random(6).shuffle(shuffled)
        a, b = tmp_path / "a.jsonl", tmp_path / "b.jsonl"
        RuleBook(rules=rules).save(a)
        RuleBook(rules=shuffled).save(b)
        assert a.read_bytes() == b.read_bytes()


class TestSchemaGuards:
    def test_refuses_other_schema_version(self, tmp_path):
        path = tmp_path / "book.jsonl"
        RuleBook(rules=random_rules(random.Random(0), 3)).save(path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["schema_version"] = SCHEMA_VERSION + 1
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(RuleBookSchemaError, match="schema_version"):
            RuleBook.load(path)

    def test_refuses_missing_header(self, tmp_path):
        path = tmp_path / "book.jsonl"
        path.write_text('{"record": "rule"}\n')
        with pytest.raises(RuleBookSchemaError, match="header"):
            RuleBook.load(path)

    def test_refuses_empty_file(self, tmp_path):
        path = tmp_path / "book.jsonl"
        path.write_text("")
        with pytest.raises(RuleBookSchemaError, match="empty"):
            RuleBook.load(path)

    def test_refuses_garbage(self, tmp_path):
        path = tmp_path / "book.jsonl"
        path.write_text("not json at all\n")
        with pytest.raises(RuleBookSchemaError, match="not JSON"):
            RuleBook.load(path)

    def test_refuses_truncated_body(self, tmp_path):
        path = tmp_path / "book.jsonl"
        RuleBook(rules=random_rules(random.Random(1), 5)).save(path)
        lines = path.read_text().splitlines()
        path.write_text("\n".join(lines[:-1]) + "\n")  # drop last rule
        with pytest.raises(RuleBookSchemaError, match="truncated"):
            RuleBook.load(path)

    def test_refuses_out_of_table_item_id(self, tmp_path):
        path = tmp_path / "book.jsonl"
        RuleBook(rules=random_rules(random.Random(2), 2)).save(path)
        lines = path.read_text().splitlines()
        rule = json.loads(lines[1])
        rule["antecedent_ids"] = [10_000]
        header = json.loads(lines[0])
        del header["n_rules"]  # disarm the count check; target the id check
        path.write_text(
            "\n".join([json.dumps(header), json.dumps(rule)] + lines[2:]) + "\n"
        )
        with pytest.raises(RuleBookSchemaError, match="bad rule record"):
            RuleBook.load(path)


class TestFromAnalysis:
    def test_workflow_export_hook(self, tmp_path):
        table = generate_supercloud(SuperCloudConfig(n_jobs=3000, use_scheduler=False))
        workflow = InterpretableAnalysis(supercloud_preprocessor())
        result = workflow.run(table, {"failure": "Failed"})
        book = result.to_rulebook(trace="supercloud")

        assert len(book) == len(result["failure"])
        assert book.trace == "supercloud"
        assert book.keywords == {"failure": "Failed"}
        assert book.config == result.config
        assert book.fingerprint == result.preprocess.database.fingerprint()
        assert book.n_transactions == len(result.preprocess.database)
        # ranked by lift descending, and the rule content survives the disk
        lifts = [r.lift for r in book.rules]
        assert lifts == sorted(lifts, reverse=True)
        path = tmp_path / "supercloud.jsonl"
        book.save(path)
        loaded = RuleBook.load(path)
        assert {(r.antecedent, r.consequent) for r in loaded.rules} == {
            (r.antecedent, r.consequent) for r in result["failure"].all_rules
        }

    def test_pooled_keywords_deduplicate(self):
        table = generate_supercloud(SuperCloudConfig(n_jobs=3000, use_scheduler=False))
        workflow = InterpretableAnalysis(supercloud_preprocessor())
        result = workflow.run(
            table, {"a": "Failed", "b": "Failed"}  # same keyword twice
        )
        book = result.to_rulebook()
        keys = [(r.antecedent, r.consequent) for r in book.rules]
        assert len(keys) == len(set(keys))
        assert len(book) == len(result["a"])
