"""Tests for the rule-based classifier and its evaluation utilities."""

import numpy as np
import pytest

from repro.core import (
    Item,
    MiningConfig,
    TransactionDatabase,
    mine_rules,
)
from repro.predict import (
    ClassificationReport,
    RuleClassifier,
    evaluate_predictions,
    split_database,
)


@pytest.fixture()
def labelled_db():
    """Synthetic DB with a clean implication: {a, b} ⇒ target."""
    rng = np.random.default_rng(42)
    txns = []
    for _ in range(400):
        a = rng.random() < 0.5
        b = rng.random() < 0.5
        target = (a and b and rng.random() < 0.9) or rng.random() < 0.05
        items = []
        if a:
            items.append("a")
        if b:
            items.append("b")
        if rng.random() < 0.5:
            items.append("noise")
        if target:
            items.append("target")
        txns.append(items)
    return TransactionDatabase.from_itemsets(txns)


def _classifier(db, **kwargs):
    rules = mine_rules(db, MiningConfig(min_support=0.02, min_lift=1.0, max_len=3))
    return RuleClassifier.from_rules(rules, "target", **kwargs)


class TestConstruction:
    def test_keeps_only_exact_target_consequents(self, labelled_db):
        clf = _classifier(labelled_db)
        assert len(clf) > 0
        for rule in clf.rules:
            assert Item.flag("target") not in rule.antecedent

    def test_rules_sorted_by_confidence(self, labelled_db):
        clf = _classifier(labelled_db)
        confidences = [r.confidence for r in clf.rules]
        assert confidences == sorted(confidences, reverse=True)

    def test_allowed_features_filter(self, labelled_db):
        clf = _classifier(labelled_db, allowed_features={"a"})
        for rule in clf.rules:
            assert all(i.feature == "a" for i in rule.antecedent)

    def test_min_confidence_filter(self, labelled_db):
        clf = _classifier(labelled_db, min_confidence=0.8)
        assert all(r.confidence >= 0.8 for r in clf.rules)

    def test_max_rules_cap(self, labelled_db):
        clf = _classifier(labelled_db, max_rules=2)
        assert len(clf) <= 2


class TestPrediction:
    def test_recovers_planted_implication(self, labelled_db):
        # min_confidence 0.7 keeps only the sharp {a, b} ⇒ target rule;
        # the one-item generalisations sit near conf 0.5 by construction
        clf = _classifier(labelled_db, min_confidence=0.7)
        predicted = clf.predict(labelled_db)
        actual = clf.labels(labelled_db)
        report = evaluate_predictions(predicted, actual)
        # the {a, b} ⇒ target implication is sharp: strong lift over base
        assert report.precision > 2 * report.base_rate
        assert report.recall > 0.5

    def test_predict_transaction_matches_vectorised(self, labelled_db):
        clf = _classifier(labelled_db, min_confidence=0.5)
        predicted = clf.predict(labelled_db)
        for i, txn in enumerate(labelled_db.iter_id_transactions()):
            assert clf.predict_transaction(set(txn.tolist())) == predicted[i]

    def test_matching_rule_explains_positives(self, labelled_db):
        clf = _classifier(labelled_db, min_confidence=0.5)
        predicted = clf.predict(labelled_db)
        for i, txn in enumerate(labelled_db.iter_id_transactions()):
            rule = clf.matching_rule(set(txn.tolist()))
            assert (rule is not None) == predicted[i]
            if rule is not None:
                assert rule.antecedent_ids <= set(txn.tolist())

    def test_empty_classifier_predicts_all_negative(self, labelled_db):
        clf = RuleClassifier("target", [])
        assert not clf.predict(labelled_db).any()

    def test_unknown_target_labels_all_negative(self, labelled_db):
        clf = RuleClassifier("ghost-target", [])
        assert not clf.labels(labelled_db).any()

    def test_generalises_to_holdout(self, labelled_db):
        train, test = split_database(labelled_db, 0.7, seed=1)
        rules = mine_rules(train, MiningConfig(min_support=0.02, min_lift=1.0, max_len=3))
        clf = RuleClassifier.from_rules(rules, "target", min_confidence=0.5)
        report = evaluate_predictions(clf.predict(test), clf.labels(test))
        assert report.f1 > 0.4


class TestEvaluation:
    def test_confusion_matrix_counts(self):
        predicted = np.asarray([True, True, False, False])
        actual = np.asarray([True, False, True, False])
        r = evaluate_predictions(predicted, actual)
        assert (r.tp, r.fp, r.fn, r.tn) == (1, 1, 1, 1)
        assert r.accuracy == 0.5
        assert r.precision == 0.5
        assert r.recall == 0.5
        assert r.f1 == 0.5
        assert r.base_rate == 0.5

    def test_degenerate_cases(self):
        r = evaluate_predictions(np.asarray([False]), np.asarray([False]))
        assert r.precision == 0.0 and r.recall == 0.0 and r.f1 == 0.0
        assert r.accuracy == 1.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            evaluate_predictions(np.asarray([True]), np.asarray([True, False]))

    def test_report_str(self):
        r = ClassificationReport(tp=1, fp=1, tn=1, fn=1)
        assert "precision=0.500" in str(r)


class TestSplit:
    def test_split_partitions(self, labelled_db):
        train, test = split_database(labelled_db, 0.7, seed=2)
        assert len(train) + len(test) == len(labelled_db)
        assert len(train) == round(0.7 * len(labelled_db))

    def test_split_deterministic(self, labelled_db):
        a1, b1 = split_database(labelled_db, 0.5, seed=3)
        a2, b2 = split_database(labelled_db, 0.5, seed=3)
        assert a1.indices.tolist() == a2.indices.tolist()
        assert b1.indices.tolist() == b2.indices.tolist()

    def test_invalid_fraction(self, labelled_db):
        with pytest.raises(ValueError):
            split_database(labelled_db, 0.0)
        with pytest.raises(ValueError):
            split_database(labelled_db, 1.0)
