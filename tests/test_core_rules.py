"""Unit + property tests for rule generation and the rule dataclass."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    FrequentItemsets,
    Item,
    MiningConfig,
    TransactionDatabase,
    generate_rules,
    mine_frequent_itemsets,
    mine_rules,
)
from repro.core.rules import AssociationRule


def _itemsets(db, min_support=0.2, max_len=None):
    return mine_frequent_itemsets(
        db, MiningConfig(min_support=min_support, max_len=max_len)
    )


class TestAssociationRule:
    def _rule(self):
        vocab_items = {0: Item("a", "1"), 1: Item.flag("F")}
        return AssociationRule(
            antecedent=frozenset({vocab_items[0]}),
            consequent=frozenset({vocab_items[1]}),
            antecedent_ids=frozenset({0}),
            consequent_ids=frozenset({1}),
            support=0.1,
            confidence=0.5,
            lift=2.0,
            leverage=0.05,
            conviction=1.5,
        )

    def test_disjoint_sides_enforced(self):
        with pytest.raises(ValueError, match="disjoint"):
            AssociationRule(
                antecedent=frozenset({Item("a", "1")}),
                consequent=frozenset({Item("a", "1")}),
                antecedent_ids=frozenset({0}),
                consequent_ids=frozenset({0}),
                support=0.1,
                confidence=0.5,
                lift=2.0,
                leverage=0.0,
                conviction=1.0,
            )

    def test_empty_side_rejected(self):
        with pytest.raises(ValueError, match="non-empty"):
            AssociationRule(
                antecedent=frozenset(),
                consequent=frozenset({Item("a", "1")}),
                antecedent_ids=frozenset(),
                consequent_ids=frozenset({0}),
                support=0.1,
                confidence=0.5,
                lift=2.0,
                leverage=0.0,
                conviction=1.0,
            )

    def test_contains_item_and_id(self):
        rule = self._rule()
        assert rule.contains(Item("a", "1"))
        assert rule.contains(0)
        assert not rule.contains(5)

    def test_length_and_items(self):
        rule = self._rule()
        assert rule.length == 2
        assert rule.item_ids == frozenset({0, 1})

    def test_str_contains_metrics(self):
        text = str(self._rule())
        assert "=>" in text and "lift=2.00" in text

    def test_as_row_flat(self):
        row = self._rule().as_row()
        assert row["antecedent"] == "a = 1"
        assert row["lift"] == 2.0


class TestGenerateRules:
    def test_metrics_match_database(self, toy_db):
        itemsets = _itemsets(toy_db)
        rules = generate_rules(itemsets, min_lift=0.0)
        n = len(toy_db)
        for rule in rules:
            supp_xy = toy_db.support_count(rule.antecedent_ids | rule.consequent_ids) / n
            supp_x = toy_db.support_count(rule.antecedent_ids) / n
            supp_y = toy_db.support_count(rule.consequent_ids) / n
            assert rule.support == pytest.approx(supp_xy)
            assert rule.confidence == pytest.approx(supp_xy / supp_x)
            assert rule.lift == pytest.approx(supp_xy / (supp_x * supp_y))

    def test_min_lift_filters(self, toy_db):
        itemsets = _itemsets(toy_db)
        all_rules = generate_rules(itemsets, min_lift=0.0)
        strong = generate_rules(itemsets, min_lift=1.1)
        assert len(strong) < len(all_rules)
        assert all(r.lift >= 1.1 for r in strong)

    def test_min_confidence_filters(self, toy_db):
        itemsets = _itemsets(toy_db)
        rules = generate_rules(itemsets, min_lift=0.0, min_confidence=0.9)
        assert all(r.confidence >= 0.9 for r in rules)

    def test_keyword_restriction(self, toy_db):
        itemsets = _itemsets(toy_db)
        beer = toy_db.vocabulary.id_of("beer")
        rules = generate_rules(itemsets, min_lift=0.0, keyword_ids=(beer,))
        assert rules
        assert all(r.contains(beer) for r in rules)

    def test_sorted_by_lift_desc(self, toy_db):
        rules = generate_rules(_itemsets(toy_db), min_lift=0.0)
        lifts = [r.lift for r in rules]
        assert lifts == sorted(lifts, reverse=True)

    def test_empty_itemsets_give_no_rules(self):
        db = TransactionDatabase.from_itemsets([])
        assert generate_rules(_itemsets(db)) == []

    def test_deterministic_order(self, toy_db):
        itemsets = _itemsets(toy_db)
        a = [str(r) for r in generate_rules(itemsets, min_lift=0.0)]
        b = [str(r) for r in generate_rules(itemsets, min_lift=0.0)]
        assert a == b

    def test_invalid_params(self, toy_db):
        itemsets = _itemsets(toy_db)
        with pytest.raises(ValueError):
            generate_rules(itemsets, min_lift=-1)
        with pytest.raises(ValueError):
            generate_rules(itemsets, min_confidence=2.0)


class TestMineRules:
    def test_end_to_end(self, toy_db):
        rules = mine_rules(toy_db, MiningConfig(min_support=0.4, min_lift=1.0))
        assert rules
        assert all(r.support >= 0.4 for r in rules)

    def test_unknown_keyword_returns_empty(self, toy_db):
        assert mine_rules(toy_db, keyword="nonexistent item") == []


@st.composite
def random_db(draw):
    n_items = draw(st.integers(2, 6))
    txns = draw(
        st.lists(
            st.lists(st.integers(0, n_items - 1), max_size=n_items),
            min_size=1,
            max_size=25,
        )
    )
    return TransactionDatabase.from_itemsets(
        [[f"i{i}" for i in t] for t in txns]
    )


@given(db=random_db())
@settings(max_examples=80, deadline=None)
def test_rule_sides_partition_a_frequent_itemset(db):
    itemsets = _itemsets(db, 0.2, 4)
    for rule in generate_rules(itemsets, min_lift=0.0):
        union = rule.antecedent_ids | rule.consequent_ids
        assert union in itemsets
        assert not (rule.antecedent_ids & rule.consequent_ids)
        # support of rule equals support of union itemset
        assert rule.support == pytest.approx(itemsets.support_of(union))
