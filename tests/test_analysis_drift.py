"""Tests for rule-drift diffing."""

import pytest

from repro.analysis.drift import RuleDrift, diff_rules
from repro.core import Item
from repro.core.rules import AssociationRule

IDS = {"a": 0, "b": 1, "K": 2, "c": 3}


def rule(ant, cons, lift=2.0, conf=0.5, supp=0.1):
    return AssociationRule(
        antecedent=frozenset(Item.flag(t) for t in ant),
        consequent=frozenset(Item.flag(t) for t in cons),
        antecedent_ids=frozenset(IDS[t] for t in ant),
        consequent_ids=frozenset(IDS[t] for t in cons),
        support=supp,
        confidence=conf,
        lift=lift,
        leverage=0.0,
        conviction=1.0,
    )


class TestDiffRules:
    def test_identical_sets_stable(self):
        rules = [rule(["a"], ["K"]), rule(["b"], ["K"])]
        drift = diff_rules(rules, rules)
        assert drift.is_stable
        assert len(drift.changed) == 2
        assert all(c.lift_delta == 0.0 for c in drift.changed)

    def test_appeared_and_disappeared(self):
        before = [rule(["a"], ["K"])]
        after = [rule(["b"], ["K"])]
        drift = diff_rules(before, after)
        assert [str(r) for r in drift.appeared] == [str(after[0])]
        assert [str(r) for r in drift.disappeared] == [str(before[0])]
        assert not drift.is_stable

    def test_metric_movement_tracked(self):
        before = [rule(["a"], ["K"], lift=2.0, conf=0.4)]
        after = [rule(["a"], ["K"], lift=3.0, conf=0.6)]
        drift = diff_rules(before, after)
        change = drift.changed[0]
        assert change.lift_delta == pytest.approx(1.0)
        assert change.confidence_delta == pytest.approx(0.2)

    def test_strengthened_weakened_thresholds(self):
        before = [
            rule(["a"], ["K"], lift=2.0),
            rule(["b"], ["K"], lift=4.0),
            rule(["c"], ["K"], lift=3.0),
        ]
        after = [
            rule(["a"], ["K"], lift=3.5),   # +1.5
            rule(["b"], ["K"], lift=2.0),   # -2.0
            rule(["c"], ["K"], lift=3.1),   # +0.1 (below threshold)
        ]
        drift = diff_rules(before, after)
        assert [c.after.lift for c in drift.strengthened(0.5)] == [3.5]
        assert [c.after.lift for c in drift.weakened(0.5)] == [2.0]

    def test_direction_matters_in_identity(self):
        # a ⇒ K and K ⇒ a are different rules
        before = [rule(["a"], ["K"])]
        after = [rule(["K"], ["a"])]
        drift = diff_rules(before, after)
        assert len(drift.appeared) == 1
        assert len(drift.disappeared) == 1

    def test_render_smoke(self):
        drift = diff_rules([rule(["a"], ["K"])], [rule(["b"], ["K"], lift=5.0)])
        text = drift.render()
        assert "appeared" in text and "disappeared" in text

    def test_empty_sets(self):
        drift = diff_rules([], [])
        assert drift.is_stable
        assert drift.changed == []
