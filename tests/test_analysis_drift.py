"""Tests for rule-drift diffing."""

import math

import pytest

from repro.analysis.drift import RuleDrift, diff_rules
from repro.core import Item
from repro.core.rules import AssociationRule
from repro.core.ruletable import RuleTable
from repro.serve.rulebook import RuleBook

IDS = {"a": 0, "b": 1, "K": 2, "c": 3}


def rule(ant, cons, lift=2.0, conf=0.5, supp=0.1, leverage=0.0, conviction=1.0):
    return AssociationRule(
        antecedent=frozenset(Item.flag(t) for t in ant),
        consequent=frozenset(Item.flag(t) for t in cons),
        antecedent_ids=frozenset(IDS[t] for t in ant),
        consequent_ids=frozenset(IDS[t] for t in cons),
        support=supp,
        confidence=conf,
        lift=lift,
        leverage=leverage,
        conviction=conviction,
    )


class TestDiffRules:
    def test_identical_sets_stable(self):
        rules = [rule(["a"], ["K"]), rule(["b"], ["K"])]
        drift = diff_rules(rules, rules)
        assert drift.is_stable
        assert len(drift.changed) == 2
        assert all(c.lift_delta == 0.0 for c in drift.changed)

    def test_appeared_and_disappeared(self):
        before = [rule(["a"], ["K"])]
        after = [rule(["b"], ["K"])]
        drift = diff_rules(before, after)
        assert [str(r) for r in drift.appeared] == [str(after[0])]
        assert [str(r) for r in drift.disappeared] == [str(before[0])]
        assert not drift.is_stable

    def test_metric_movement_tracked(self):
        before = [rule(["a"], ["K"], lift=2.0, conf=0.4)]
        after = [rule(["a"], ["K"], lift=3.0, conf=0.6)]
        drift = diff_rules(before, after)
        change = drift.changed[0]
        assert change.lift_delta == pytest.approx(1.0)
        assert change.confidence_delta == pytest.approx(0.2)

    def test_strengthened_weakened_thresholds(self):
        before = [
            rule(["a"], ["K"], lift=2.0),
            rule(["b"], ["K"], lift=4.0),
            rule(["c"], ["K"], lift=3.0),
        ]
        after = [
            rule(["a"], ["K"], lift=3.5),   # +1.5
            rule(["b"], ["K"], lift=2.0),   # -2.0
            rule(["c"], ["K"], lift=3.1),   # +0.1 (below threshold)
        ]
        drift = diff_rules(before, after)
        assert [c.after.lift for c in drift.strengthened(0.5)] == [3.5]
        assert [c.after.lift for c in drift.weakened(0.5)] == [2.0]

    def test_direction_matters_in_identity(self):
        # a ⇒ K and K ⇒ a are different rules
        before = [rule(["a"], ["K"])]
        after = [rule(["K"], ["a"])]
        drift = diff_rules(before, after)
        assert len(drift.appeared) == 1
        assert len(drift.disappeared) == 1

    def test_render_smoke(self):
        drift = diff_rules([rule(["a"], ["K"])], [rule(["b"], ["K"], lift=5.0)])
        text = drift.render()
        assert "appeared" in text and "disappeared" in text

    def test_empty_sets(self):
        drift = diff_rules([], [])
        assert drift.is_stable
        assert drift.changed == []

    def test_disjoint_vocabularies_full_turnover(self):
        # rule sets sharing no items: everything appeared + disappeared,
        # nothing spuriously "changed"
        before = [rule(["a"], ["K"]), rule(["b"], ["K"])]
        after = [rule(["c"], ["b"]), rule(["K"], ["c"])]
        drift = diff_rules(before, after)
        assert len(drift.appeared) == 2
        assert len(drift.disappeared) == 2
        assert drift.changed == []


class TestDiffRuleTables:
    """diff_rules accepts the canonical columnar RuleTable on either side."""

    def test_table_vs_objects_equivalent(self):
        before = [rule(["a"], ["K"]), rule(["b"], ["K"], lift=4.0)]
        after = [rule(["a"], ["K"], lift=3.0), rule(["c"], ["K"])]
        obj_drift = diff_rules(before, after)
        tab_drift = diff_rules(
            RuleTable.from_rules(before), RuleTable.from_rules(after)
        )
        for field in ("appeared", "disappeared"):
            assert sorted(map(str, getattr(tab_drift, field))) == sorted(
                map(str, getattr(obj_drift, field))
            )
        assert {(str(c.before), c.lift_delta) for c in tab_drift.changed} == {
            (str(c.before), c.lift_delta) for c in obj_drift.changed
        }

    def test_mixed_forms_and_different_id_spaces(self):
        # the same rules through RuleBook canonicalisation get a densified
        # id-space; item-keyed diffing must still see them as identical
        rules = [rule(["a", "b"], ["K"]), rule(["c"], ["K"])]
        book = RuleBook(rules=rules)
        drift = diff_rules(rules, book.table)
        assert drift.is_stable
        assert len(drift.changed) == 2

    def test_identical_tables_stable(self):
        table = RuleTable.from_rules([rule(["a"], ["K"])])
        drift = diff_rules(table, table)
        assert drift.is_stable and len(drift.changed) == 1

    def test_inf_nan_metrics_survive_json_round_trip(self, tmp_path):
        # exact implications have conviction inf; a degenerate recount can
        # produce nan — both must diff cleanly after strict-JSON save/load
        exotic = [
            rule(["a"], ["K"], lift=math.inf, conf=1.0, conviction=math.inf),
            rule(["b"], ["K"], lift=2.0, leverage=math.nan),
        ]
        book = RuleBook(rules=exotic)
        path = tmp_path / "exotic.jsonl"
        book.save(path)
        loaded = RuleBook.load(path)
        drift = diff_rules(book.table, loaded.table)
        assert drift.is_stable
        by_str = {str(c.after): c.after for c in drift.changed}
        exact = by_str[str(exotic[0])]
        assert math.isinf(exact.conviction) and math.isinf(exact.lift)
        assert math.isnan(by_str[str(exotic[1])].leverage)
        # lift inf - inf is nan — delta computation must not raise
        assert math.isnan(
            next(c for c in drift.changed if str(c.after) == str(exotic[0]))
            .lift_delta
        )
