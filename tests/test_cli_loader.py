"""Tests for the CLI and the trace CSV loader."""

import pytest

from repro.cli import main
from repro.dataframe import BooleanColumn, ColumnTable, write_csv
from repro.traces import PhillyConfig, generate_philly, philly_preprocessor
from repro.traces.loader import load_trace, save_trace


class TestLoader:
    def test_roundtrip_preserves_analysis(self, tmp_path):
        table = generate_philly(PhillyConfig(n_jobs=400, use_scheduler=False))
        path = tmp_path / "philly.csv"
        save_trace(table, path)
        loaded = load_trace(path, trace="philly")
        assert len(loaded) == len(table)
        # flags restored to booleans
        assert isinstance(loaded["failed"], BooleanColumn)
        assert loaded["failed"].to_list() == table["failed"].to_list()
        # the preprocessor accepts the loaded table
        result = philly_preprocessor().run(loaded)
        assert len(result.database) == len(table)

    def test_missing_columns_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        write_csv(ColumnTable.from_dict({"user": ["u0"], "runtime": [5.0]}), path)
        with pytest.raises(ValueError, match="missing"):
            load_trace(path, trace="philly")

    def test_load_without_schema_check(self, tmp_path):
        path = tmp_path / "any.csv"
        write_csv(ColumnTable.from_dict({"x": [1, 2]}), path)
        loaded = load_trace(path)
        assert len(loaded) == 2


class TestCli:
    def test_traces_lists_all(self, capsys):
        assert main(["traces"]) == 0
        out = capsys.readouterr().out
        for name in ("pai", "supercloud", "philly"):
            assert name in out

    def test_generate_writes_csv(self, tmp_path, capsys):
        out_path = tmp_path / "trace.csv"
        code = main(
            ["generate", "--trace", "philly", "--n-jobs", "300",
             "--output", str(out_path)]
        )
        assert code == 0
        assert out_path.exists()
        assert "300" in capsys.readouterr().out

    def test_analyze_generated(self, capsys):
        code = main(
            ["analyze", "--trace", "supercloud", "--keyword", "Failed",
             "--n-jobs", "2500", "--max-cause", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Antecedent" in out and "Failed" in out
        assert "rules kept" in out

    def test_analyze_from_csv(self, tmp_path, capsys):
        out_path = tmp_path / "t.csv"
        assert main(
            ["generate", "--trace", "philly", "--n-jobs", "2500",
             "--output", str(out_path)]
        ) == 0
        capsys.readouterr()
        code = main(
            ["analyze", "--trace", "philly", "--keyword", "SM Util = 0%",
             "--input", str(out_path), "--max-cause", "2"]
        )
        assert code == 0
        assert "SM Util = 0%" in capsys.readouterr().out

    def test_analyze_custom_thresholds(self, capsys):
        code = main(
            ["analyze", "--trace", "supercloud", "--keyword", "Failed",
             "--n-jobs", "2000", "--min-support", "0.1", "--min-lift", "1.2",
             "--algorithm", "eclat"]
        )
        assert code == 0

    def test_casestudy(self, capsys):
        code = main(["casestudy", "--trace", "supercloud", "--n-jobs", "2500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Case study" in out
        assert "underutilization" in out or "GPU underutilization" in out

    def test_unknown_trace_exits_2(self, capsys):
        # the module docstring promises exit status 2 on argument errors
        assert main(["analyze", "--trace", "helios", "--keyword", "Failed"]) == 2
        assert "invalid choice" in capsys.readouterr().err

    def test_unknown_backend_exits_2(self, capsys):
        code = main(
            ["analyze", "--trace", "pai", "--keyword", "Failed",
             "--backend", "quantum"]
        )
        assert code == 2
        assert "--backend" in capsys.readouterr().err

    def test_missing_subcommand_exits_2(self, capsys):
        assert main([]) == 2

    def test_help_exits_0(self, capsys):
        assert main(["--help"]) == 0
        assert "casestudy" in capsys.readouterr().out

    def test_invalid_workers_exits_2(self, capsys):
        code = main(
            ["analyze", "--trace", "supercloud", "--keyword", "Failed",
             "--n-jobs", "1500", "--backend", "threaded", "--workers", "0"]
        )
        assert code == 2
        assert "n_workers" in capsys.readouterr().err

    def test_missing_input_file_is_error_exit(self, capsys):
        code = main(
            ["analyze", "--trace", "philly", "--keyword", "Failed",
             "--input", "/nonexistent/trace.csv"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err


class TestCliEngineFlags:
    def test_stats_footer_rendered(self, capsys):
        code = main(
            ["analyze", "--trace", "supercloud", "--keyword", "Failed",
             "--n-jobs", "2000", "--max-cause", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "engine stats" in out
        for stage in ("preprocess", "mine", "generate-rules", "prune"):
            assert stage in out

    def test_process_backend(self, capsys):
        code = main(
            ["analyze", "--trace", "supercloud", "--keyword", "Failed",
             "--n-jobs", "2000", "--backend", "process", "--workers", "2",
             "--max-cause", "2"]
        )
        assert code == 0
        assert "backend=process" in capsys.readouterr().out

    def test_no_cache_flag(self, capsys):
        code = main(
            ["analyze", "--trace", "supercloud", "--keyword", "Failed",
             "--n-jobs", "2000", "--no-cache", "--max-cause", "2"]
        )
        assert code == 0
        assert "cache=off" in capsys.readouterr().out


class TestCliExtensions:
    def test_stats_subcommand(self, capsys):
        code = main(["stats", "--trace", "supercloud", "--n-jobs", "1500"])
        assert code == 0
        out = capsys.readouterr().out
        assert "characterisation" in out and "gini" in out

    def test_insights_subcommand(self, capsys):
        code = main(
            ["insights", "--trace", "philly", "--keyword", "Failed",
             "--n-jobs", "3000"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "→" in out  # at least one recommendation rendered

    def test_insights_unknown_keyword(self, capsys):
        code = main(
            ["insights", "--trace", "philly", "--keyword", "No Such Item",
             "--n-jobs", "1500"]
        )
        assert code == 0
        assert "no insights" in capsys.readouterr().out


class TestServeCli:
    """The mine-rulebook → match offline path of the serving subsystem."""

    def test_mine_rulebook_then_match(self, tmp_path, capsys):
        book_path = tmp_path / "supercloud.rulebook.jsonl"
        code = main(
            ["mine-rulebook", "--trace", "supercloud", "--n-jobs", "2500",
             "--keyword", "Failed", "--output", str(book_path)]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "wrote RuleBook" in out
        assert "engine stats" in out
        assert book_path.exists()

        from repro.serve import RuleBook

        book = RuleBook.load(book_path)
        assert len(book) > 0
        assert book.trace == "supercloud"
        assert book.keywords == {"Failed": "Failed"}

        code = main(
            ["match", "--rulebook", str(book_path), "--trace", "supercloud",
             "--n-jobs", "2000", "--explain"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "matched 2000 jobs" in out
        assert "coverage" in out

    def test_mine_rulebook_default_keywords(self, tmp_path, capsys):
        book_path = tmp_path / "pai.rulebook.jsonl"
        code = main(
            ["mine-rulebook", "--trace", "pai", "--n-jobs", "2500",
             "--output", str(book_path)]
        )
        assert code == 0
        from repro.serve import RuleBook

        # with no --keyword, every case-study keyword of the trace is mined
        from repro.traces import get_trace

        book = RuleBook.load(book_path)
        assert book.keywords == get_trace("pai").keywords

    def test_match_missing_rulebook_exits_2(self, capsys):
        code = main(
            ["match", "--rulebook", "/nonexistent/book.jsonl",
             "--trace", "pai", "--n-jobs", "100"]
        )
        assert code == 2
        assert "error" in capsys.readouterr().err

    def test_match_rejects_bad_schema(self, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"record": "header", "schema_version": 99, "items": []}\n')
        code = main(
            ["match", "--rulebook", str(bad), "--trace", "pai",
             "--n-jobs", "100"]
        )
        assert code == 2
        assert "schema_version" in capsys.readouterr().err
