"""Tests for drift-gated refresh and serve --follow live refresh.

Three layers, mirroring the subsystem:

* :class:`TestRefresherGate` — the drift gate's hold/remine decisions,
  stream provenance, and the bit-identity of the incremental recount
  against the book's own full-remine metrics;
* :class:`TestStreamFollower` — NDJSON tailing, bad-line tolerance, and
  versioned book output, with no serving fleet attached;
* :class:`TestFollowLiveRefresh` — the whole loop against a real
  multi-process cluster under sustained load (the chaos harness):
  refreshes must deliver zero client-visible failures, every response
  must carry a version tag, and the fleet must settle on the newest
  version.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.core import MiningConfig
from repro.engine import MiningEngine
from repro.serve import RuleBook, RuleIndex, RuleServiceClient
from repro.streaming import (
    RuleBookRefresher,
    StreamFollower,
    StreamingBitmapWindow,
)

from .serve_chaos import ChaosCluster, LoadDriver


def run(coro):
    return asyncio.run(coro)


CONFIG = MiningConfig(min_support=0.15, min_lift=1.2)


def _stream(seed: int, n: int) -> list[list[str]]:
    # the keyword K is strongly correlated with A=hot (lift ≈ 1.6), so
    # mining the window actually yields rules for the "always" study
    import random

    rng = random.Random(seed)
    out = []
    for _ in range(n):
        txn = []
        if rng.random() < 0.5:
            txn.append("A = hot")
            if rng.random() < 0.9:
                txn.append("K")
        else:
            txn.append("A = cold")
            if rng.random() < 0.2:
                txn.append("K")
        txn.append(f"B = b{rng.randrange(3)}")
        out.append(sorted(txn))
    return out


def _bootstrap(seed: int = 3, warmup: int = 192, window: int = 192):
    win = StreamingBitmapWindow(window)
    win.observe_many(_stream(seed, warmup))
    refresher = RuleBookRefresher.bootstrap(
        win,
        {"k": "K"},
        CONFIG,
        engine=MiningEngine(cache=False),
        threshold=0.05,
        trace="chaos",
    )
    return win, refresher


class TestRefresherGate:
    def test_bootstrap_stamps_stream_provenance(self):
        win, refresher = _bootstrap()
        book = refresher.book
        assert refresher.version == 1
        assert len(book) > 0
        assert book.stream["trigger"] == "bootstrap"
        assert book.stream["version"] == 1
        assert book.stream["n_seen"] == win.n_seen
        first, last = book.stream["window"]
        assert (last - first) == book.stream["n_window"] == len(win)

    def test_stable_window_holds(self):
        _win, refresher = _bootstrap()
        result = refresher.tick()
        assert not result.remined
        assert result.trigger is None
        assert result.drift_score == 0.0
        assert refresher.version == 1
        assert [s.name for s in result.stats.stages] == [
            "stream-recount",
            "stream-drift",
        ]

    def test_recount_is_bit_identical_to_the_remine(self):
        # the book was just remined from this exact window, so an
        # incremental recount must reproduce its metric columns
        # bit-for-bit — same integer counts, same float ops
        _win, refresher = _bootstrap()
        result = refresher.tick()
        recounted, book_table = result.recounted, refresher.book.table
        assert len(recounted) == len(book_table)
        for name in ("support", "confidence", "lift", "leverage", "conviction"):
            ours = getattr(recounted, name)
            theirs = getattr(book_table, name)
            assert np.array_equal(ours, theirs, equal_nan=True), name

    def test_drift_triggers_remine_with_provenance(self):
        win, refresher = _bootstrap()
        # shove the window into a different item regime
        win.observe_many(
            [[f"G{k % 5} = new", "K"] for k in range(400)]
        )
        result = refresher.tick()
        assert result.remined and result.trigger == "drift"
        assert result.drift_score >= refresher.threshold
        assert refresher.version == 2
        assert refresher.book.stream["trigger"] == "drift"
        assert [s.name for s in result.stats.stages] == [
            "stream-recount",
            "stream-drift",
            "stream-remine",
        ]

    def test_zero_threshold_remines_every_tick(self):
        win, refresher = _bootstrap()
        refresher.threshold = 0.0
        win.observe_many(_stream(9, 10))
        refresher.tick()
        win.observe_many(_stream(10, 10))
        refresher.tick()
        assert refresher.version == 3
        assert refresher.n_remines == 3  # bootstrap + 2 ticks

    def test_force_overrides_gate(self):
        _win, refresher = _bootstrap()
        result = refresher.remine_now()
        assert result.remined and result.trigger == "forced"

    def test_empty_window_tick_raises(self):
        win = StreamingBitmapWindow(64)
        book = RuleBook(keywords={"k": "K"}, config=CONFIG)
        refresher = RuleBookRefresher(win, book, engine=MiningEngine(cache=False))
        with pytest.raises(ValueError, match="empty window"):
            refresher.tick()

    def test_provenance_survives_save_load(self, tmp_path):
        _win, refresher = _bootstrap()
        path = tmp_path / "streamed.jsonl"
        refresher.book.save(path)
        loaded = RuleBook.load(path)
        assert loaded.stream == refresher.book.stream
        assert "stream=" in loaded.provenance()
        # batch-mined books stay clean: no stream key at all
        batch = RuleBook(rules=tuple(refresher.book.rules)[:3])
        batch_path = tmp_path / "batch.jsonl"
        batch.save(batch_path)
        header = json.loads(batch_path.read_text().splitlines()[0])
        assert "stream" not in header
        assert RuleBook.load(batch_path).stream is None


class TestStreamFollower:
    def test_tails_remines_and_writes_versioned_books(self, tmp_path):
        _win, refresher = _bootstrap()
        refresher.threshold = 0.0  # deterministic: every tick remines
        stream_path = tmp_path / "events.ndjson"
        out_dir = tmp_path / "books"
        follower = StreamFollower(
            refresher,
            stream_path,
            ports=(),
            out_dir=out_dir,
            interval_s=0.05,
            min_events=4,
            poll_s=0.02,
        )
        events = _stream(17, 48)

        async def scenario():
            stop = asyncio.Event()
            task = asyncio.create_task(follower.run(stop))
            with open(stream_path, "w") as fh:
                for k, txn in enumerate(events):
                    fh.write(json.dumps(txn) + "\n")
                    if k % 3 == 0:  # object form is accepted too
                        fh.write(json.dumps({"transaction": txn}) + "\n")
                    if k == 10:
                        fh.write("{not json\n")       # malformed line
                        fh.write('{"no": "txn"}\n')   # wrong shape
                        fh.flush()
                        await asyncio.sleep(0.15)
            async with asyncio.timeout(20):
                while follower.stats.n_remines < 2:
                    await asyncio.sleep(0.02)
            stop.set()
            return await task

        stats = run(scenario())
        assert stats.n_events >= len(events)
        assert stats.n_bad_lines == 2
        assert stats.n_ticks >= stats.n_remines >= 2
        latest = RuleBook.load(out_dir / "rulebook.latest.jsonl")
        assert latest.stream["version"] == refresher.version
        versioned = out_dir / f"rulebook.v{refresher.version}.jsonl"
        assert versioned.exists()
        assert "events=" in stats.render()

    def test_validates_cadence_parameters(self, tmp_path):
        _win, refresher = _bootstrap()
        with pytest.raises(ValueError, match="interval_s"):
            StreamFollower(refresher, tmp_path / "s", interval_s=0.0)
        with pytest.raises(ValueError, match="min_events"):
            StreamFollower(refresher, tmp_path / "s", min_events=0)


class TestFollowLiveRefresh:
    def test_fleet_refreshes_under_load_without_failures(self, tmp_path):
        win, refresher = _bootstrap(seed=5, warmup=192)
        refresher.threshold = 0.0
        initial_path = tmp_path / "initial.jsonl"
        refresher.book.save(initial_path)
        stream_path = tmp_path / "events.ndjson"
        out_dir = tmp_path / "books"
        load_txns = _stream(6, 64)

        async def scenario():
            async with ChaosCluster(str(initial_path), 2) as chaos:
                follower = StreamFollower(
                    refresher,
                    stream_path,
                    host=chaos.host,
                    ports=[chaos.port],
                    out_dir=out_dir,
                    interval_s=0.1,
                    min_events=8,
                    poll_s=0.02,
                )
                async with LoadDriver(
                    chaos.host, chaos.port, load_txns
                ) as driver:
                    await driver.wait_for_progress(30, timeout=30)
                    stop = asyncio.Event()
                    task = asyncio.create_task(follower.run(stop))
                    # feed the stream in chunks so several ticks (and
                    # therefore several rolling refreshes) happen
                    chunks = iter(range(100))
                    async with asyncio.timeout(60):
                        while follower.stats.n_reloads < 2:
                            chunk = next(chunks)
                            with open(stream_path, "a") as fh:
                                for txn in _stream(100 + chunk, 16):
                                    fh.write(json.dumps(txn) + "\n")
                            await asyncio.sleep(0.15)
                    stop.set()
                    stats = await task
                    # traffic straddling refreshes must all be answered
                    marker = driver.marker()
                    await driver.wait_for_progress(30, timeout=30)
                    outcome = await driver.stop()

                assert stats.n_reloads >= 2
                assert stats.n_reload_failures == 0

                # zero client-visible failures across every refresh
                assert outcome.failures == [], outcome.failures[:5]
                # every response names the index version that served it
                versions = [r.version for r in outcome.records]
                assert all(v is not None for v in versions)
                vmax = max(versions)
                assert vmax >= 1 + stats.n_reloads
                assert set(versions) <= set(range(1, vmax + 1))
                # after the last refresh settles, no stale version serves
                assert set(outcome.versions_after(marker)) == {vmax}

                # served answers match a batch remine: the live fleet
                # agrees with an offline index over the follower's book
                latest = RuleBook.load(out_dir / "rulebook.latest.jsonl")
                offline = RuleIndex.from_rulebook(latest)
                async with await RuleServiceClient.connect(
                    chaos.host, chaos.port
                ) as client:
                    health = await client.healthz()
                    assert health["version"] == vmax
                    for txn in load_txns[:10]:
                        response = await client.match(txn)
                        served = [
                            (f["antecedent"], f["consequent"])
                            for f in response["fired"]
                        ]
                        expected = [
                            (
                                d["antecedent"],
                                d["consequent"],
                            )
                            for d in (
                                m.as_dict() for m in offline.match(txn)
                            )
                        ]
                        assert served == expected

        run(scenario())
