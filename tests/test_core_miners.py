"""Unit + property tests for FP-Growth, Apriori and Eclat.

The three algorithms must return *identical* support-count maps on every
database — the paper's Sec. III-C argument for FP-Growth is performance,
never results.  A brute-force reference miner anchors correctness.
"""

from itertools import combinations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    TransactionDatabase,
    apriori,
    eclat,
    fpgrowth,
    generate_candidates,
)

ALGOS = [fpgrowth, apriori, eclat]


def brute_force(db: TransactionDatabase, min_support: float, max_len=None):
    """Reference miner: enumerate every subset of every transaction size."""
    n = len(db)
    if n == 0:
        return {}
    min_count = max(1, int(np.ceil(min_support * n - 1e-9)))
    items = [i for i, c in enumerate(db.item_support_counts()) if c > 0]
    out = {}
    limit = max_len if max_len is not None else len(items)
    txns = [frozenset(t.tolist()) for t in db.iter_id_transactions()]
    for k in range(1, min(limit, len(items)) + 1):
        for combo in combinations(items, k):
            s = frozenset(combo)
            count = sum(1 for t in txns if s <= t)
            if count >= min_count:
                out[s] = count
    return out


@pytest.fixture()
def textbook(toy_db):
    return toy_db


class TestAgainstBruteForce:
    @pytest.mark.parametrize("algo", ALGOS)
    @pytest.mark.parametrize("min_support", [0.2, 0.4, 0.6, 1.0])
    def test_textbook_database(self, textbook, algo, min_support):
        assert algo(textbook, min_support) == brute_force(textbook, min_support)

    @pytest.mark.parametrize("algo", ALGOS)
    @pytest.mark.parametrize("max_len", [1, 2, 3])
    def test_max_len_respected(self, textbook, algo, max_len):
        result = algo(textbook, 0.2, max_len)
        assert result == brute_force(textbook, 0.2, max_len)
        assert all(len(s) <= max_len for s in result)


class TestEdgeCases:
    @pytest.mark.parametrize("algo", ALGOS)
    def test_empty_database(self, algo):
        db = TransactionDatabase.from_itemsets([])
        assert algo(db, 0.5) == {}

    @pytest.mark.parametrize("algo", ALGOS)
    def test_all_empty_transactions(self, algo):
        db = TransactionDatabase.from_itemsets([[], []])
        assert algo(db, 0.5) == {}

    @pytest.mark.parametrize("algo", ALGOS)
    def test_single_transaction(self, algo):
        db = TransactionDatabase.from_itemsets([["a", "b"]])
        result = algo(db, 1.0)
        assert len(result) == 3  # {a}, {b}, {a,b}
        assert all(c == 1 for c in result.values())

    @pytest.mark.parametrize("algo", ALGOS)
    def test_min_support_zero_means_count_one(self, algo):
        db = TransactionDatabase.from_itemsets([["a"], ["b"]])
        result = algo(db, 0.0)
        # support-0 itemsets are never emitted; everything with >= 1 is
        assert set(result.values()) == {1}

    @pytest.mark.parametrize("algo", ALGOS)
    def test_invalid_support_rejected(self, algo, textbook):
        with pytest.raises(ValueError):
            algo(textbook, 1.5)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_invalid_max_len_rejected(self, algo, textbook):
        with pytest.raises(ValueError):
            algo(textbook, 0.5, 0)

    @pytest.mark.parametrize("algo", ALGOS)
    def test_identical_transactions(self, algo):
        db = TransactionDatabase.from_itemsets([["x", "y"]] * 7)
        result = algo(db, 1.0)
        assert result == {
            frozenset({0}): 7,
            frozenset({1}): 7,
            frozenset({0, 1}): 7,
        }


class TestAprioriCandidates:
    def test_join_shares_prefix(self):
        cands = generate_candidates([(0, 1), (0, 2), (1, 2)])
        assert (0, 1, 2) in cands

    def test_prune_infrequent_subset(self):
        # (0,1,2) requires (1,2) to be frequent — here it is not
        cands = generate_candidates([(0, 1), (0, 2)])
        assert cands == []

    def test_level_one_join(self):
        assert generate_candidates([(0,), (1,), (2,)]) == [
            (0, 1),
            (0, 2),
            (1, 2),
        ]

    def test_empty_input(self):
        assert generate_candidates([]) == []


# -- property-based equivalence -------------------------------------------------

@st.composite
def random_database(draw):
    n_items = draw(st.integers(min_value=1, max_value=8))
    n_txns = draw(st.integers(min_value=0, max_value=30))
    txns = draw(
        st.lists(
            st.lists(
                st.integers(min_value=0, max_value=n_items - 1),
                max_size=n_items,
            ),
            min_size=n_txns,
            max_size=n_txns,
        )
    )
    items = [f"i{k}" for k in range(n_items)]
    return TransactionDatabase.from_itemsets(
        [[items[i] for i in t] for t in txns]
    )


@given(
    db=random_database(),
    min_support=st.sampled_from([0.1, 0.25, 0.5, 0.75]),
    max_len=st.sampled_from([None, 1, 2, 3, 4]),
)
@settings(max_examples=120, deadline=None)
def test_three_algorithms_agree(db, min_support, max_len):
    r_fp = fpgrowth(db, min_support, max_len)
    r_ap = apriori(db, min_support, max_len)
    r_ec = eclat(db, min_support, max_len)
    assert r_fp == r_ap == r_ec


@given(db=random_database(), min_support=st.sampled_from([0.2, 0.5]))
@settings(max_examples=60, deadline=None)
def test_fpgrowth_matches_brute_force(db, min_support):
    assert fpgrowth(db, min_support) == brute_force(db, min_support)


@given(db=random_database())
@settings(max_examples=60, deadline=None)
def test_support_antimonotone(db):
    """Every subset of a frequent itemset has >= its support (Apriori property)."""
    result = fpgrowth(db, 0.2)
    for itemset, count in result.items():
        for item in itemset:
            sub = itemset - {item}
            if sub:
                assert result[sub] >= count


@given(db=random_database(), min_support=st.sampled_from([0.1, 0.3, 0.6]))
@settings(max_examples=60, deadline=None)
def test_counts_are_exact(db, min_support):
    """Reported counts equal direct database counts."""
    for itemset, count in fpgrowth(db, min_support).items():
        assert db.support_count(itemset) == count
