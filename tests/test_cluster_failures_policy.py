"""Tests for failure injection and the SJF scheduling policy."""

import numpy as np
import pytest

from repro.cluster import (
    ClusterSimulator,
    ClusterSpec,
    FailureModel,
    FCFSScheduler,
    JobRequest,
    JobStatus,
    NodeSpec,
    apply_time_limit,
    build_nodes,
    inject_node_failures,
)


def job(job_id, submit, runtime, n_gpus=1):
    return JobRequest(
        job_id=job_id, user="u", submit_time=submit, runtime=runtime,
        n_gpus=n_gpus, n_cpus=1, mem_gb=1.0, gpu_type="V100",
    )


def nodes(n_gpus=1, count=1):
    return build_nodes(
        ClusterSpec.of((NodeSpec("n", "V100", n_gpus, 32, 128), count))
    )


class TestTimeLimits:
    def test_clamps_and_fails_over_limit(self):
        jobs = [job(0, 0.0, 100.0), job(1, 0.0, 10.0)]
        clamped = apply_time_limit(jobs, 50.0)
        assert clamped == 1
        assert jobs[0].runtime == 50.0
        assert jobs[0].status is JobStatus.FAILED
        assert jobs[0].extras["failure_cause"] == "time_limit"
        assert jobs[1].status is JobStatus.COMPLETED

    def test_invalid_limit(self):
        with pytest.raises(ValueError):
            apply_time_limit([], 0.0)

    def test_simulator_integration(self):
        cluster = ClusterSpec.of((NodeSpec("n", "V100", 4, 32, 128), 2))
        jobs = [job(i, 0.0, 1000.0 if i % 2 else 10.0) for i in range(8)]
        sim = ClusterSimulator(
            cluster, seed=1, failures=FailureModel(time_limit_s=100.0)
        )
        table = sim.run(jobs).to_table()
        statuses = table["status"].to_list()
        runtimes = table["runtime"].values
        for i in range(8):
            if i % 2:
                assert statuses[i] == "failed"
                assert runtimes[i] == pytest.approx(100.0)
            else:
                assert statuses[i] == "completed"

    def test_timeouts_produce_long_runtime_failures(self):
        """The SuperCloud Table VI A2 mechanism: failures at the runtime
        ceiling, not shortly after launch."""
        cluster = ClusterSpec.of((NodeSpec("n", "V100", 8, 64, 256), 4))
        rng = np.random.default_rng(0)
        jobs = [
            job(i, float(rng.uniform(0, 1e4)), float(rng.lognormal(8, 1.5)))
            for i in range(300)
        ]
        sim = ClusterSimulator(
            cluster, seed=1, failures=FailureModel(time_limit_s=40_000.0)
        )
        table = sim.run(jobs).to_table()
        failed = np.asarray([s == "failed" for s in table["status"].to_list()])
        rt = table["runtime"].values
        assert failed.any()
        # every injected failure sits exactly at the ceiling — the top of
        # the runtime distribution
        assert rt[failed].min() >= np.quantile(rt, 0.75)


class TestNodeFailures:
    def test_job_overlapping_failure_is_killed(self):
        model = FailureModel(node_mtbf_s=500.0, node_repair_s=100.0, seed=4)
        sched = FCFSScheduler(nodes(n_gpus=4))
        jobs = [job(i, 0.0, 5000.0) for i in range(4)]
        placements, _ = sched.run(jobs)
        killed = inject_node_failures(placements, model)
        assert killed >= 1
        for placement in placements:
            if placement.request.status is JobStatus.FAILED:
                assert placement.end_time < placement.start_time + 5000.0
                assert placement.request.extras["failure_cause"] == "node_failure"

    def test_no_mtbf_no_failures(self):
        placements, _ = FCFSScheduler(nodes()).run([job(0, 0.0, 100.0)])
        assert inject_node_failures(placements, FailureModel()) == 0

    def test_short_jobs_rarely_hit(self):
        model = FailureModel(node_mtbf_s=1e9, seed=5)
        placements, _ = FCFSScheduler(nodes(count=4)).run(
            [job(i, float(i), 1.0) for i in range(20)]
        )
        assert inject_node_failures(placements, model) == 0

    def test_deterministic_for_seed(self):
        def run():
            placements, _ = FCFSScheduler(nodes(n_gpus=8)).run(
                [job(i, 0.0, 10_000.0) for i in range(8)]
            )
            inject_node_failures(
                placements, FailureModel(node_mtbf_s=3000.0, seed=9)
            )
            return [p.end_time for p in placements]

        assert run() == run()

    def test_validation(self):
        with pytest.raises(ValueError):
            FailureModel(time_limit_s=-1.0)
        with pytest.raises(ValueError):
            FailureModel(node_mtbf_s=0.0)
        with pytest.raises(ValueError):
            FailureModel(node_repair_s=-1.0)

    def test_enabled_flag(self):
        assert not FailureModel().enabled
        assert FailureModel(time_limit_s=10.0).enabled
        assert FailureModel(node_mtbf_s=10.0).enabled


class TestSJFPolicy:
    def test_short_job_served_first(self):
        # one GPU; long job arrives first but both are queued behind an
        # occupying job — SJF serves the short one first
        sched = FCFSScheduler(nodes(), policy="sjf")
        jobs = [
            job(0, 0.0, 50.0),   # occupies the GPU
            job(1, 1.0, 100.0),  # long, arrives before the short one
            job(2, 2.0, 5.0),    # short
        ]
        placements, _ = sched.run(jobs)
        assert placements[2].start_time == 50.0
        assert placements[1].start_time == 55.0

    def test_fcfs_keeps_arrival_order(self):
        sched = FCFSScheduler(nodes(), policy="fcfs")
        jobs = [job(0, 0.0, 50.0), job(1, 1.0, 100.0), job(2, 2.0, 5.0)]
        placements, _ = sched.run(jobs)
        assert placements[1].start_time == 50.0
        assert placements[2].start_time == 150.0

    def test_sjf_penalises_long_jobs(self):
        """PHI1 insight: under SJF, long (multi-GPU-style) jobs wait
        disproportionately when short jobs keep arriving."""
        rng = np.random.default_rng(2)
        jobs = []
        for i in range(120):
            long_job = i % 6 == 0
            jobs.append(
                job(i, float(rng.uniform(0, 500)), 200.0 if long_job else 10.0)
            )
        fcfs, _ = FCFSScheduler(nodes(n_gpus=2), policy="fcfs").run(jobs)
        sjf, _ = FCFSScheduler(nodes(n_gpus=2), policy="sjf").run(jobs)

        def mean_delay(placements, predicate):
            delays = [
                p.start_time - p.request.submit_time
                for p in placements
                if predicate(p.request)
            ]
            return sum(delays) / len(delays)

        short_fcfs = mean_delay(fcfs, lambda r: r.runtime < 100)
        short_sjf = mean_delay(sjf, lambda r: r.runtime < 100)
        long_sjf = mean_delay(sjf, lambda r: r.runtime >= 100)
        long_fcfs = mean_delay(fcfs, lambda r: r.runtime >= 100)
        assert short_sjf < short_fcfs  # SJF helps the short jobs
        assert long_sjf > long_fcfs  # …at the long jobs' expense

    def test_unknown_policy_rejected(self):
        with pytest.raises(ValueError, match="unknown policy"):
            FCFSScheduler(nodes(), policy="random")

    def test_all_jobs_still_scheduled(self):
        jobs = [job(i, float(i % 7), float(1 + i % 13)) for i in range(60)]
        placements, stats = FCFSScheduler(nodes(n_gpus=2), policy="sjf").run(jobs)
        assert stats.n_scheduled == 60
        assert len(placements) == 60
