"""Tests for the three synthetic trace generators: schemas, marginals and
Fig. 4/5 shape targets.

Marginal tolerances are deliberately loose — they assert the *shape* the
paper reports (orderings, coarse magnitudes), not the random draw.
"""

import numpy as np
import pytest

from repro.traces import (
    PAIConfig,
    PhillyConfig,
    SuperCloudConfig,
    generate_pai,
    generate_philly,
    generate_supercloud,
    get_trace,
    list_traces,
)


def share(table, column):
    return float(np.mean(np.asarray(table[column].to_numpy(), dtype=bool)))


class TestPAI:
    def test_schema(self, pai_table):
        expected = {
            "job_id", "user", "group", "queue_delay", "runtime", "n_gpus",
            "cpu_request", "mem_request", "gpu_type_req", "framework",
            "model_name", "status", "mem_used_gb", "gmem_used_gb",
            "sm_util", "cpu_util", "multi_task", "archetype", "failed",
        }
        assert set(pai_table.column_names) == expected

    def test_near_zero_sm_share_fig4(self, pai_table):
        sm0 = float(np.mean(pai_table["sm_util"].values == 0))
        assert 0.35 <= sm0 <= 0.60  # paper: 46 %

    def test_failure_share_fig5(self, pai_table):
        failed = share(pai_table, "failed")
        assert 0.18 <= failed <= 0.40  # paper: highest of the three, >13 %

    def test_no_killed_label(self, pai_table):
        # PAI has no user-kill label (Sec. IV-C)
        assert set(pai_table["status"].to_list()) <= {"failed", "completed"}

    def test_std_cpu_request_mass(self, pai_table):
        values = pai_table["cpu_request"].values
        top_share = np.mean(values == 600.0)
        assert top_share >= 0.3  # the paper's "standard request" signal

    def test_gpu_type_labels(self, pai_table):
        assert set(pai_table["gpu_type_req"].to_list()) <= {
            "None", "T4", "P100", "V100",
        }

    def test_model_labels_partially_missing(self, pai_table):
        models = pai_table["model_name"].to_list()
        missing = sum(1 for m in models if m is None) / len(models)
        assert 0.3 <= missing <= 0.9  # the NaN subset the paper filters

    def test_t4_queue_advantage(self, pai_table):
        # PAI1/PAI2: T4 queues are shorter than non-T4 queues
        q = pai_table["queue_delay"].values
        types = pai_table["gpu_type_req"].to_list()
        t4 = np.asarray([t == "T4" for t in types])
        non_t4 = np.asarray([t in ("P100", "V100") for t in types])
        assert q[t4].mean() < q[non_t4].mean()

    def test_scales_with_config(self):
        small = generate_pai(PAIConfig(n_jobs=500, use_scheduler=False))
        assert len(small) == 500

    def test_deterministic_for_seed(self):
        a = generate_pai(PAIConfig(n_jobs=300, use_scheduler=False))
        b = generate_pai(PAIConfig(n_jobs=300, use_scheduler=False))
        assert a.to_dict() == b.to_dict()

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            PAIConfig(n_jobs=0)


class TestSuperCloud:
    def test_schema_has_variance_features(self, supercloud_table):
        for column in ("sm_util_var", "gmem_util_var", "gpu_power"):
            assert column in supercloud_table

    def test_near_zero_sm_share_fig4(self, supercloud_table):
        sm0 = float(np.mean(supercloud_table["sm_util"].values == 0))
        assert 0.05 <= sm0 <= 0.25  # paper: 10 %

    def test_failed_and_killed_fig5(self, supercloud_table):
        assert 0.08 <= share(supercloud_table, "failed") <= 0.25
        assert 0.08 <= share(supercloud_table, "killed") <= 0.25

    def test_new_user_kill_association_cir1(self, supercloud_table):
        new = np.asarray(supercloud_table["is_new_user"].to_numpy(), dtype=bool)
        killed = np.asarray(supercloud_table["killed"].to_numpy(), dtype=bool)
        lift = killed[new].mean() / killed.mean()
        assert lift > 1.4  # paper: 1.75

    def test_inference_holds_memory_with_zero_sm(self, supercloud_table):
        sm = supercloud_table["sm_util"].values
        var = supercloud_table["sm_util_var"].values
        gmem = supercloud_table["gmem_used_gb"].values
        bursty = (sm == 0) & (var > 0.5)
        assert bursty.any()
        idle = (sm == 0) & (var <= 0.5)
        assert gmem[bursty].mean() > gmem[idle].mean()

    def test_homogeneous_v100(self, supercloud_table):
        # SuperCloud is homogeneous; the trace has no GPU-type column
        assert "gpu_type" not in supercloud_table


class TestPhilly:
    def test_schema_has_min_max_sm(self, philly_table):
        for column in ("sm_util_min", "sm_util_max", "num_attempts"):
            assert column in philly_table

    def test_near_zero_sm_share_fig4(self, philly_table):
        sm0 = float(np.mean(philly_table["sm_util"].values == 0))
        assert 0.25 <= sm0 <= 0.50  # paper: 35 %

    def test_multi_gpu_share(self, philly_table):
        multi = share(philly_table, "multi_gpu")
        assert 0.08 <= multi <= 0.22  # paper: 14 %

    def test_multi_gpu_failure_lift_c1(self, philly_table):
        failed = np.asarray(philly_table["failed"].to_numpy(), dtype=bool)
        multi = np.asarray(philly_table["multi_gpu"].to_numpy(), dtype=bool)
        assert failed[multi].mean() / failed.mean() > 1.5  # paper: 2.55

    def test_new_user_failure_lift_c2(self, philly_table):
        failed = np.asarray(philly_table["failed"].to_numpy(), dtype=bool)
        new = np.asarray(philly_table["is_new_user"].to_numpy(), dtype=bool)
        assert failed[new].mean() / failed.mean() > 1.3  # paper: 2.46

    def test_multi_gpu_runtime_phi1(self, philly_table):
        rt = philly_table["runtime"].values
        multi = np.asarray(philly_table["multi_gpu"].to_numpy(), dtype=bool)
        assert np.median(rt[multi]) > np.median(rt[~multi])

    def test_retries_only_with_attempts(self, philly_table):
        attempts = philly_table["num_attempts"].values
        retried = np.asarray(philly_table["retried"].to_numpy(), dtype=bool)
        assert ((attempts > 1) == retried).all()

    def test_two_gpu_memory_flavours(self, philly_table):
        assert set(philly_table["gpu_type"].to_list()) == {"GPU12GB", "GPU24GB"}


class TestFig4Ordering:
    def test_near_zero_share_ordering(self, pai_table, supercloud_table, philly_table):
        """Fig. 4: PAI (46 %) > Philly (35 %) > SuperCloud (10 %)."""
        def sm0(t):
            return float(np.mean(t["sm_util"].values == 0))

        assert sm0(pai_table) > sm0(philly_table) > sm0(supercloud_table)


class TestFig5Ordering:
    def test_pai_fails_most(self, pai_table, supercloud_table, philly_table):
        assert share(pai_table, "failed") > share(philly_table, "failed")
        assert share(pai_table, "failed") > share(supercloud_table, "failed")

    def test_all_failures_considerable(self, pai_table, supercloud_table, philly_table):
        for t in (pai_table, supercloud_table, philly_table):
            assert share(t, "failed") > 0.08  # paper: > 13 %


class TestRegistry:
    def test_three_traces_registered(self):
        assert list_traces() == ["pai", "philly", "supercloud"]

    def test_get_trace_case_insensitive(self):
        assert get_trace("PAI").name == "pai"

    def test_unknown_trace(self):
        with pytest.raises(KeyError):
            get_trace("helios")

    def test_generate_scaled(self):
        table = get_trace("philly").generate_scaled(
            n_jobs=200, use_scheduler=False
        )
        assert len(table) == 200

    def test_paper_reference_numbers(self):
        pai = get_trace("pai")
        assert pai.paper_jobs == 850_000
        assert pai.operator == "Alibaba"
