"""Router tests: LB policies, oracle equivalence, control-plane fan-out.

Shards here are in-process :class:`RuleService` instances on ephemeral
ports — real sockets, same protocol, but one event loop, so these tests
stay fast and deterministic.  Process-level faults (SIGKILL, SIGSTOP)
live in ``test_serve_chaos.py`` on top of the ``serve_chaos`` harness.
"""

import asyncio
import random

import pytest

from repro.core.items import Item
from repro.serve import (
    RuleBook,
    RuleIndex,
    RuleService,
    RuleServiceClient,
    ShardHandle,
    ShardRouter,
)
from repro.serve.lb import (
    LB_POLICIES,
    LatencyWeightedPolicy,
    LeastLoadedPolicy,
    RoundRobinPolicy,
    get_policy,
)

from .test_serve_rulebook import random_rules


def run(coro):
    return asyncio.run(coro)


def make_book(seed=0, n_rules=60, n_items=25) -> RuleBook:
    return RuleBook(rules=random_rules(random.Random(seed), n_rules, n_items))


def make_transactions(seed, n, n_items=25, max_len=8) -> list[list[str]]:
    """Random jobs over the same item vocabulary `random_rules` uses."""
    rng = random.Random(seed)
    vocabulary = [str(Item(f"F{k % 7}", f"v{k}")) for k in range(n_items)]
    return [
        sorted(rng.sample(vocabulary, rng.randint(1, max_len)))
        for _ in range(n)
    ]


class Fleet:
    """N full-replica in-process shards behind one router."""

    def __init__(self, book: RuleBook, n_shards: int, **router_kwargs):
        self.book = book
        self.n_shards = n_shards
        self.router_kwargs = router_kwargs
        self.services: list[RuleService] = []
        self.router: ShardRouter | None = None

    async def __aenter__(self) -> "Fleet":
        for k in range(self.n_shards):
            service = RuleService.from_rulebook(self.book, name=f"s{k}")
            await service.start(port=0)
            self.services.append(service)
        handles = [
            ShardHandle(f"s{k}", "127.0.0.1", service.port)
            for k, service in enumerate(self.services)
        ]
        self.router = ShardRouter(handles, **self.router_kwargs)
        await self.router.start("127.0.0.1", 0)
        return self

    async def __aexit__(self, *exc) -> None:
        if self.router is not None:
            await self.router.shutdown()
        for service in self.services:
            await service.shutdown()

    @property
    def port(self) -> int:
        assert self.router is not None
        return self.router.port


class FakeShard:
    """Just the signals a policy reads."""

    def __init__(self, name, inflight=0, ewma=0.0):
        self.name = name
        self.inflight = inflight
        self.ewma_latency_s = ewma


class TestPolicies:
    def test_registry_mirrors_backends_idiom(self):
        assert set(LB_POLICIES) >= {
            "round_robin",
            "least_loaded",
            "latency_weighted",
        }
        assert isinstance(get_policy("round_robin"), RoundRobinPolicy)
        passthrough = LeastLoadedPolicy()
        assert get_policy(passthrough) is passthrough
        with pytest.raises(ValueError, match="unknown LB policy"):
            get_policy("definitely_not_registered")

    def test_round_robin_cycles(self):
        shards = [FakeShard(k) for k in range(3)]
        policy = RoundRobinPolicy()
        picks = [policy.choose(shards).name for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_prefers_idle_shard(self):
        busy = FakeShard("busy", inflight=10)
        idle = FakeShard("idle", inflight=0)
        policy = LeastLoadedPolicy()
        for _ in range(5):
            assert policy.choose([busy, idle]) is idle
        # ties break round-robin, not always-first
        even = [FakeShard(k) for k in range(3)]
        picks = {policy.choose(even).name for _ in range(6)}
        assert picks == {0, 1, 2}

    def test_latency_weighted_scores_expected_wait(self):
        fast_busy = FakeShard("fast", inflight=3, ewma=0.001)  # 0.004
        slow_idle = FakeShard("slow", inflight=0, ewma=0.100)  # 0.100
        policy = LatencyWeightedPolicy()
        assert policy.choose([fast_busy, slow_idle]) is fast_busy
        # a never-measured shard scores zero: probed first (warm-up)
        fresh = FakeShard("fresh")
        assert policy.choose([fast_busy, slow_idle, fresh]) is fresh


class TestOracleEquivalence:
    @pytest.mark.parametrize("policy", sorted(LB_POLICIES))
    def test_routed_matches_equal_brute_force(self, policy):
        book = make_book(seed=3)
        oracle = RuleIndex.from_rulebook(book)
        transactions = make_transactions(seed=17, n=1000)
        expected = [
            [rule_id for rule_id, _ in oracle.match_wire(txn)]
            for txn in transactions
        ]
        assert any(expected), "oracle must fire on some transactions"

        async def scenario():
            async with Fleet(book, n_shards=3, policy=policy) as fleet:
                async with await RuleServiceClient.connect(
                    "127.0.0.1", fleet.port
                ) as client:
                    by_id: dict[int, dict] = {}
                    window = 64
                    sent = 0
                    for txn in transactions:
                        await client.send(
                            {"type": "match", "transaction": txn}
                        )
                        sent += 1
                        if sent - len(by_id) >= window:
                            response = await client.receive()
                            by_id[response["id"]] = response
                    while len(by_id) < sent:
                        response = await client.receive()
                        by_id[response["id"]] = response
                # every shard actually served some of the traffic
                assert fleet.router is not None
                served = [h.n_answered for h in fleet.router.handles]
                assert all(count > 0 for count in served), served
                return [by_id[k] for k in range(1, sent + 1)]

        responses = run(scenario())
        for response, want in zip(responses, expected):
            assert response["type"] == "match_result"
            got = [m["rule_id"] for m in response["fired"]]
            # identical rule ids in identical order — rule-id order IS
            # the (lift, confidence, support) ranking in a RuleIndex
            assert got == want

    def test_explain_responses_forward_unchanged(self):
        book = make_book(seed=5)
        oracle = RuleIndex.from_rulebook(book)
        transactions = make_transactions(seed=23, n=50)

        async def scenario():
            async with Fleet(book, n_shards=2) as fleet:
                async with await RuleServiceClient.connect(
                    "127.0.0.1", fleet.port
                ) as client:
                    return [
                        await client.match(txn, explain=True)
                        for txn in transactions
                    ]

        responses = run(scenario())
        for txn, response in zip(transactions, responses):
            want_fired = [m.as_dict() for m in oracle.match(txn)]
            want_near = [n.as_dict() for n in oracle.explain(txn)]
            assert response["fired"] == want_fired
            assert response["near_misses"] == want_near


class TestControlPlane:
    def test_healthz_aggregates_fleet_state(self):
        book = make_book()

        async def scenario():
            async with Fleet(book, n_shards=3) as fleet:
                async with await RuleServiceClient.connect(
                    "127.0.0.1", fleet.port
                ) as client:
                    health = await client.healthz()
                    assert health["status"] == "ok"
                    assert health["role"] == "router"
                    assert health["n_shards"] == 3
                    assert health["n_healthy"] == 3
                    assert health["n_rules"] == len(book)
                    assert health["version"] == 1
                    assert health["version_tag"] == book.fingerprint
                    names = {s["name"] for s in health["shards"]}
                    assert names == {"s0", "s1", "s2"}

                    # lose a shard: degraded, but matching still works
                    await fleet.services[0].shutdown()
                    await asyncio.sleep(0.05)  # handle notices the EOF
                    health = await client.healthz()
                    assert health["status"] == "degraded"
                    assert health["n_healthy"] == 2
                    result = await client.match(["feature_1 = bin1"])
                    assert result["type"] == "match_result"

        run(scenario())

    def test_metrics_aggregation_sums_shards(self):
        book = make_book()
        transactions = make_transactions(seed=29, n=120)

        async def scenario():
            async with Fleet(book, n_shards=3) as fleet:
                async with await RuleServiceClient.connect(
                    "127.0.0.1", fleet.port
                ) as client:
                    for txn in transactions:
                        await client.match(txn)
                    metrics = await client.metrics()
                    assert metrics["role"] == "router"
                    assert metrics["n_shards"] == 3
                    # each request was counted on exactly one shard
                    assert metrics["requests"]["matched"] == len(transactions)
                    assert metrics["latency"]["count"] == len(transactions)
                    assert metrics["router"]["routed"] == len(transactions)
                    # per-rule fire counts survive the merge
                    per_shard = [
                        s.metrics.rule_matches for s in fleet.services
                    ]
                    want_total = sum(
                        sum(counts.values()) for counts in per_shard
                    )
                    got_total = sum(metrics["rule_matches"].values())
                    assert got_total == want_total

        run(scenario())

    def test_rolling_reload_through_router(self, tmp_path):
        old_book = make_book(seed=0)
        new_book = make_book(seed=8, n_rules=90)
        new_path = tmp_path / "new.rulebook.jsonl"
        new_book.save(new_path)

        async def scenario():
            async with Fleet(old_book, n_shards=3) as fleet:
                async with await RuleServiceClient.connect(
                    "127.0.0.1", fleet.port
                ) as client:
                    result = await client.request(
                        {"type": "reload", "rulebook": str(new_path)}
                    )
                    assert result["type"] == "reload_result"
                    assert result["status"] == "ok"
                    assert result["version"] == 2
                    assert result["version_tag"] == new_book.fingerprint
                    assert result["n_rules"] == len(new_book)
                    assert [s["ok"] for s in result["shards"]] == [True] * 3

                    # every replica converged on the same version number
                    for service in fleet.services:
                        assert service.version == 2
                        assert service.version_tag == new_book.fingerprint

                    match = await client.match(["feature_1 = bin1"])
                    assert match["version"] == 2

                    # a second reload keeps counting up cluster-wide
                    result = await client.request(
                        {"type": "reload", "rulebook": str(new_path)}
                    )
                    assert result["version"] == 3

        run(scenario())

    def test_dead_fleet_sheds_load_with_retry_hint(self):
        book = make_book()

        async def scenario():
            async with Fleet(book, n_shards=2) as fleet:
                for service in fleet.services:
                    await service.shutdown()
                await asyncio.sleep(0.05)
                # raw client (no retries): observe the shed response
                async with await RuleServiceClient.connect(
                    "127.0.0.1", fleet.port, max_retries=0
                ) as client:
                    await client.send(
                        {"type": "match", "transaction": ["feature_1 = bin1"]}
                    )
                    response = await client.receive()
                    assert response["type"] == "error"
                    assert response["error"] == "overloaded"
                    assert response["retry_after"] > 0
                    health = await client.healthz()
                    assert health["status"] == "unavailable"

        run(scenario())
