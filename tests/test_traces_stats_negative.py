"""Tests for trace characterisation and negative-rule mining."""

import numpy as np
import pytest

from repro.core import MiningConfig, TransactionDatabase, mine_frequent_itemsets
from repro.core.negative import mine_negative_keyword_rules
from repro.dataframe import ColumnTable
from repro.traces.stats import TraceStats, characterize, gini


class TestGini:
    def test_equal_distribution_zero(self):
        assert gini(np.asarray([5.0, 5.0, 5.0, 5.0])) == pytest.approx(0.0)

    def test_total_concentration_near_one(self):
        values = np.asarray([0.0] * 99 + [100.0])
        assert gini(values) > 0.95

    def test_known_value(self):
        # two users, one with everything: gini = 1/2 for n = 2
        assert gini(np.asarray([0.0, 10.0])) == pytest.approx(0.5)

    def test_all_zero(self):
        assert gini(np.zeros(5)) == 0.0

    def test_invalid(self):
        with pytest.raises(ValueError):
            gini(np.asarray([]))
        with pytest.raises(ValueError):
            gini(np.asarray([-1.0]))


class TestCharacterize:
    def test_on_generated_trace(self, supercloud_table):
        stats = characterize(supercloud_table)
        assert stats.n_jobs == len(supercloud_table)
        assert stats.n_users > 10
        assert 0 < stats.user_gini < 1
        assert abs(sum(stats.status_shares.values()) - 1.0) < 1e-9
        assert 0.05 <= stats.sm_util_zero_share <= 0.25
        assert stats.runtime_p90_s >= stats.runtime_median_s
        text = stats.render()
        assert "gini" in text and "SM util" in text

    def test_missing_column_rejected(self):
        table = ColumnTable.from_dict({"user": ["a"], "status": ["completed"]})
        with pytest.raises(ValueError, match="sm_util"):
            characterize(table)

    def test_gpu_request_defaults_to_one(self):
        table = ColumnTable.from_dict(
            {
                "user": ["a", "b"],
                "status": ["completed", "failed"],
                "sm_util": [0.0, 50.0],
                "runtime": [10.0, 20.0],
                "queue_delay": [0.0, 5.0],
            }
        )
        assert characterize(table).gpu_request_mean == 1.0


@pytest.fixture()
def protective_db():
    """Planted: 'safe' jobs almost never fail; 'risky' ones mostly do."""
    rng = np.random.default_rng(9)
    txns = []
    for _ in range(800):
        safe = rng.random() < 0.5
        fails = rng.random() < (0.05 if safe else 0.6)
        items = ["safe" if safe else "risky"]
        if fails:
            items.append("Failed")
        txns.append(items)
    return TransactionDatabase.from_itemsets(txns)


class TestNegativeRules:
    CFG = MiningConfig(min_support=0.1, min_lift=1.05, max_len=3)

    def test_protective_factor_found(self, protective_db):
        rules = mine_negative_keyword_rules(protective_db, "Failed", self.CFG)
        assert rules
        top = rules[0]
        assert {i.render() for i in top.antecedent} == {"safe"}
        assert top.confidence > 0.9

    def test_metrics_consistent_with_database(self, protective_db):
        rules = mine_negative_keyword_rules(protective_db, "Failed", self.CFG)
        n = len(protective_db)
        for rule in rules:
            supp_x = protective_db.support(rule.antecedent_ids)
            supp_xk = protective_db.support(
                set(rule.antecedent_ids)
                | {protective_db.vocabulary.id_of("Failed")}
            )
            assert rule.support == pytest.approx(supp_x - supp_xk)
            assert rule.confidence == pytest.approx(1.0 - supp_xk / supp_x)

    def test_complementarity_with_positive_confidence(self, protective_db):
        from repro.core import generate_rules

        fis = mine_frequent_itemsets(protective_db, self.CFG.with_(min_lift=0.0))
        kw = protective_db.vocabulary.id_of("Failed")
        positive = {
            r.antecedent_ids: r.confidence
            for r in generate_rules(fis, min_lift=0.0, keyword_ids=(kw,))
            if r.consequent_ids == frozenset({kw})
        }
        negative = mine_negative_keyword_rules(
            protective_db, "Failed", self.CFG.with_(min_lift=0.0)
        )
        for rule in negative:
            if rule.antecedent_ids in positive:
                assert rule.confidence == pytest.approx(
                    1.0 - positive[rule.antecedent_ids]
                )

    def test_unknown_keyword(self, protective_db):
        assert mine_negative_keyword_rules(protective_db, "ghost", self.CFG) == []

    def test_keyword_never_absent(self):
        db = TransactionDatabase.from_itemsets([["K", "a"]] * 10)
        assert mine_negative_keyword_rules(db, "K", self.CFG) == []

    def test_sorted_by_lift(self, protective_db):
        rules = mine_negative_keyword_rules(protective_db, "Failed", self.CFG)
        lifts = [r.lift for r in rules]
        assert lifts == sorted(lifts, reverse=True)

    def test_str_form(self, protective_db):
        rules = mine_negative_keyword_rules(protective_db, "Failed", self.CFG)
        assert "NOT Failed" in str(rules[0])

    def test_exclude_items_drops_sibling_status(self, supercloud_db):
        rules = mine_negative_keyword_rules(
            supercloud_db,
            "Failed",
            MiningConfig(min_lift=1.05),
            exclude_items=["Job Killed"],
        )
        for rule in rules:
            assert all(i.render() != "Job Killed" for i in rule.antecedent)

    def test_on_real_trace_protective_factors(self, supercloud_db):
        """Healthy-utilisation jobs are protective against failure (once
        the trivially-exclusive sibling status is excluded)."""
        rules = mine_negative_keyword_rules(
            supercloud_db,
            "Failed",
            MiningConfig(min_lift=1.05),
            exclude_items=["Job Killed"],
        )
        assert rules
        top_items = {i.render() for r in rules[:15] for i in r.antecedent}
        # high-utilisation bins should appear among protective factors
        assert any("Bin3" in t or "Bin4" in t for t in top_items)
