"""Tests for Conditions 1–4 (Sec. III-D), including the paper's own
worked R1/R2 examples."""

import pytest

from repro.core import Item, PruningConfig, prune_rules
from repro.core.pruning import keyword_rules
from repro.core.rules import AssociationRule

# item universe used across the tests
USER_A = Item.flag("user A")
TYPE_B = Item.flag("job type B")
FAILURE = Item.flag("job failure")
SHORT = Item.flag("short runtime")
CLUSTER_C = Item.flag("cluster C")

IDS = {USER_A: 0, TYPE_B: 1, FAILURE: 2, SHORT: 3, CLUSTER_C: 4}


def rule(antecedent, consequent, supp, lift, conf=0.5):
    return AssociationRule(
        antecedent=frozenset(antecedent),
        consequent=frozenset(consequent),
        antecedent_ids=frozenset(IDS[i] for i in antecedent),
        consequent_ids=frozenset(IDS[i] for i in consequent),
        support=supp,
        confidence=conf,
        lift=lift,
        leverage=0.0,
        conviction=1.0,
    )


CFG = PruningConfig(c_lift=1.5, c_supp=1.5)


class TestCondition1:
    """Keyword in consequent, antecedents nested (cause analysis)."""

    def test_shorter_wins_on_similar_lift(self):
        # paper: R1 {user A} => {failure}, R2 {user A, type B} => {failure};
        # lift of R1 similar/higher → prune R2
        r1 = rule([USER_A], [FAILURE], supp=0.2, lift=3.0)
        r2 = rule([USER_A, TYPE_B], [FAILURE], supp=0.1, lift=3.5)  # 1.5*3 >= 3.5
        kept, report = prune_rules([r1, r2], FAILURE, CFG)
        assert kept == [r1]
        assert report.pruned_by_condition[1] == 1

    def test_longer_wins_on_higher_lift_and_similar_support(self):
        # R2 has clearly higher lift and similar support → prune R1
        r1 = rule([USER_A], [FAILURE], supp=0.12, lift=2.0)
        r2 = rule([USER_A, TYPE_B], [FAILURE], supp=0.10, lift=4.0)
        kept, _ = prune_rules([r1, r2], FAILURE, CFG)
        assert kept == [r2]

    def test_both_kept_when_longer_lift_high_but_support_collapses(self):
        # longer rule has high lift but much smaller support → neither test
        # fires against the shorter rule, and its own lift blocks C1
        r1 = rule([USER_A], [FAILURE], supp=0.5, lift=2.0)
        r2 = rule([USER_A, TYPE_B], [FAILURE], supp=0.05, lift=4.0)
        kept, _ = prune_rules([r1, r2], FAILURE, CFG)
        assert kept == [r1, r2]


class TestCondition2:
    """Keyword in antecedent, consequents nested (characteristic analysis)."""

    def test_more_specific_consequent_preferred(self):
        # paper: {failure} => {short} vs {failure} => {short, cluster C};
        # similar lift & support → keep the longer (more informative)
        r1 = rule([FAILURE], [SHORT], supp=0.12, lift=2.0)
        r2 = rule([FAILURE], [SHORT, CLUSTER_C], supp=0.10, lift=1.8)
        kept, report = prune_rules([r1, r2], FAILURE, CFG)
        assert kept == [r2]
        assert report.pruned_by_condition[2] == 1

    def test_conservative_rule_kept_on_clear_lift_advantage(self):
        # R1 has a clear lift advantage → binding to cluster C misleads
        r1 = rule([FAILURE], [SHORT], supp=0.12, lift=4.0)
        r2 = rule([FAILURE], [SHORT, CLUSTER_C], supp=0.10, lift=2.0)
        kept, _ = prune_rules([r1, r2], FAILURE, CFG)
        assert kept == [r1]

    def test_both_kept_when_support_gap_large(self):
        # similar lift but the long rule is rare → short not pruned; long
        # rule's lift is not strictly worse → long kept too
        r1 = rule([FAILURE], [SHORT], supp=0.5, lift=2.0)
        r2 = rule([FAILURE], [SHORT, CLUSTER_C], supp=0.05, lift=2.0)
        kept, _ = prune_rules([r1, r2], FAILURE, CFG)
        assert kept == [r1, r2]


class TestCondition3:
    """Keyword in both consequents, consequents nested (cause analysis)."""

    def test_concise_consequent_preferred(self):
        # paper: {user A} => {failure} vs {user A} => {failure, cluster C}
        r1 = rule([USER_A], [FAILURE], supp=0.2, lift=3.0)
        r2 = rule([USER_A], [FAILURE, CLUSTER_C], supp=0.1, lift=3.2)
        kept, report = prune_rules([r1, r2], FAILURE, CFG)
        assert kept == [r1]
        assert report.pruned_by_condition[3] == 1

    def test_longer_kept_when_much_stronger(self):
        r1 = rule([USER_A], [FAILURE], supp=0.2, lift=1.6)
        r2 = rule([USER_A], [FAILURE, CLUSTER_C], supp=0.1, lift=3.0)
        kept, _ = prune_rules([r1, r2], FAILURE, CFG)
        assert r2 in kept


class TestCondition4:
    """Keyword in both antecedents, antecedents nested (characteristics)."""

    def test_generalising_antecedent_preferred(self):
        # paper: {failure} => {short} vs {failure, cluster C} => {short}
        r1 = rule([FAILURE], [SHORT], supp=0.2, lift=2.5)
        r2 = rule([FAILURE, CLUSTER_C], [SHORT], supp=0.1, lift=2.6)
        kept, report = prune_rules([r1, r2], FAILURE, CFG)
        assert kept == [r1]
        assert report.pruned_by_condition[4] == 1

    def test_specific_antecedent_kept_when_much_stronger(self):
        r1 = rule([FAILURE], [SHORT], supp=0.2, lift=1.6)
        r2 = rule([FAILURE, CLUSTER_C], [SHORT], supp=0.1, lift=3.0)
        kept, _ = prune_rules([r1, r2], FAILURE, CFG)
        assert r2 in kept


class TestGeneralBehaviour:
    def test_rules_without_keyword_removed(self):
        r = rule([USER_A], [SHORT], supp=0.2, lift=2.0)
        kept, report = prune_rules([r], FAILURE, CFG)
        assert kept == []
        assert report.n_input == 0

    def test_keyword_rules_helper(self):
        with_kw = rule([FAILURE], [SHORT], 0.1, 2.0)
        without = rule([USER_A], [SHORT], 0.1, 2.0)
        assert keyword_rules([with_kw, without], FAILURE) == [with_kw]

    def test_keyword_accepts_string(self):
        r = rule([FAILURE], [SHORT], 0.1, 2.0)
        kept, _ = prune_rules([r], "job failure", CFG)
        assert kept == [r]

    def test_non_nested_rules_untouched(self):
        r1 = rule([USER_A], [FAILURE], 0.2, 3.0)
        r2 = rule([TYPE_B], [FAILURE], 0.2, 3.0)
        kept, _ = prune_rules([r1, r2], FAILURE, CFG)
        assert kept == [r1, r2]

    def test_order_independence(self):
        r1 = rule([USER_A], [FAILURE], supp=0.2, lift=3.0)
        r2 = rule([USER_A, TYPE_B], [FAILURE], supp=0.1, lift=3.5)
        kept_a, _ = prune_rules([r1, r2], FAILURE, CFG)
        kept_b, _ = prune_rules([r2, r1], FAILURE, CFG)
        assert set(map(str, kept_a)) == set(map(str, kept_b))

    def test_report_counts_consistent(self):
        r1 = rule([USER_A], [FAILURE], supp=0.2, lift=3.0)
        r2 = rule([USER_A, TYPE_B], [FAILURE], supp=0.1, lift=3.5)
        r3 = rule([TYPE_B], [SHORT], supp=0.1, lift=3.5)  # no keyword
        kept, report = prune_rules([r1, r2, r3], FAILURE, CFG)
        assert report.n_input == 2
        assert report.n_kept == len(kept) == 1
        assert report.n_pruned == 1
        assert "C1" in str(report)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            PruningConfig(c_lift=0.5)
        with pytest.raises(ValueError):
            PruningConfig(c_supp=0.0)

    def test_c_lift_one_is_strict_comparison(self):
        cfg = PruningConfig(c_lift=1.0, c_supp=1.0)
        r1 = rule([USER_A], [FAILURE], supp=0.2, lift=3.0)
        r2 = rule([USER_A, TYPE_B], [FAILURE], supp=0.1, lift=3.1)
        # 1.0 * 3.0 < 3.1, so condition flips to the support branch:
        # 1.0 * 0.1 < 0.2 → nothing pruned
        kept, _ = prune_rules([r1, r2], FAILURE, cfg)
        assert kept == [r1, r2]
