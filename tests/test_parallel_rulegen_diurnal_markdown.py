"""Tests for parallel rule generation, diurnal arrivals and markdown export."""

import numpy as np
import pytest

from repro.analysis import format_rule_table
from repro.analysis.report import case_study_markdown, format_table_markdown
from repro.core import (
    MiningConfig,
    generate_rules,
    mine_frequent_itemsets,
    mine_keyword_rules,
)
from repro.cluster import JobRequest
from repro.parallel import parallel_generate_rules
from repro.traces.synthetic.base import diurnal_arrivals


@pytest.fixture(scope="module")
def sc_itemsets(supercloud_db):
    return mine_frequent_itemsets(supercloud_db, MiningConfig())


class TestParallelRuleGen:
    @pytest.mark.parametrize("n_chunks", [1, 3, 8])
    def test_identical_to_serial(self, sc_itemsets, n_chunks):
        serial = generate_rules(sc_itemsets, min_lift=1.5)
        parallel = parallel_generate_rules(
            sc_itemsets, min_lift=1.5, n_workers=1, n_chunks=n_chunks
        )
        assert [str(r) for r in serial] == [str(r) for r in parallel]

    def test_process_pool_identical(self, sc_itemsets):
        serial = generate_rules(sc_itemsets, min_lift=1.5)
        parallel = parallel_generate_rules(
            sc_itemsets, min_lift=1.5, n_workers=2, n_chunks=4
        )
        assert [str(r) for r in serial] == [str(r) for r in parallel]

    def test_keyword_restriction(self, sc_itemsets, supercloud_db):
        kw = supercloud_db.vocabulary.id_of("Failed")
        serial = generate_rules(sc_itemsets, min_lift=1.5, keyword_ids=(kw,))
        parallel = parallel_generate_rules(
            sc_itemsets, min_lift=1.5, keyword_ids=(kw,), n_workers=1, n_chunks=3
        )
        assert [str(r) for r in serial] == [str(r) for r in parallel]

    def test_empty_table(self, supercloud_db):
        from repro.core import FrequentItemsets

        empty = FrequentItemsets({}, supercloud_db.vocabulary, 10, 0.5)
        assert parallel_generate_rules(empty) == []

    def test_invalid_workers(self, sc_itemsets):
        with pytest.raises(ValueError):
            parallel_generate_rules(sc_itemsets, n_workers=0)

    def test_expand_only_core_hook(self, sc_itemsets):
        """The core hook restricts enumeration but not metric lookups."""
        big = [s for s in sc_itemsets.counts if len(s) >= 2][:5]
        restricted = generate_rules(sc_itemsets, min_lift=0.0, expand_only=big)
        assert restricted
        allowed = set(map(frozenset, big))
        for rule in restricted:
            assert (rule.antecedent_ids | rule.consequent_ids) in allowed


class TestDiurnalArrivals:
    def _jobs(self, n):
        return [
            JobRequest(job_id=i, user="u", submit_time=0.0, runtime=1.0)
            for i in range(n)
        ]

    def test_assigns_sorted_times_in_range(self):
        rng = np.random.default_rng(1)
        jobs = self._jobs(500)
        diurnal_arrivals(rng, jobs, duration_s=5 * 86400.0, peak_ratio=3.0)
        times = [j.submit_time for j in jobs]
        assert times == sorted(times)
        assert 0.0 <= times[0] and times[-1] <= 5 * 86400.0

    def test_peak_hours_busier(self):
        rng = np.random.default_rng(2)
        jobs = self._jobs(20_000)
        diurnal_arrivals(rng, jobs, duration_s=10 * 86400.0, peak_ratio=4.0,
                         peak_hour=15.0)
        hours = np.asarray([(j.submit_time % 86400.0) / 3600.0 for j in jobs])
        peak = ((hours >= 13) & (hours < 17)).sum()
        trough = ((hours >= 1) & (hours < 5)).sum()
        assert peak > 2.0 * trough

    def test_peak_ratio_one_is_uniform(self):
        rng = np.random.default_rng(3)
        jobs = self._jobs(5000)
        diurnal_arrivals(rng, jobs, duration_s=86400.0, peak_ratio=1.0)
        hours = np.asarray([j.submit_time / 3600.0 for j in jobs])
        counts, _ = np.histogram(hours, bins=6)
        assert counts.max() < 1.5 * counts.min()

    def test_invalid_ratio(self):
        with pytest.raises(ValueError):
            diurnal_arrivals(np.random.default_rng(0), self._jobs(2), 100.0, 0.5)

    def test_empty_jobs_noop(self):
        diurnal_arrivals(np.random.default_rng(0), [], 100.0)


class TestMarkdownExport:
    def test_table_markdown_structure(self, supercloud_db):
        result = mine_keyword_rules(supercloud_db, "Failed", MiningConfig())
        table = format_rule_table(result, "Failure rules", 2, 1)
        md = format_table_markdown(table)
        assert md.startswith("### Failure rules")
        assert "| C1 |" in md
        assert md.splitlines()[3] == "|---|---|---|---|---|---|"

    def test_case_study_markdown(self, supercloud_db):
        result = mine_keyword_rules(supercloud_db, "Failed", MiningConfig())
        tables = {"failure": format_rule_table(result, "Failure rules", 2, 1)}
        md = case_study_markdown(tables, "SuperCloud")
        assert md.startswith("## SuperCloud")
        assert "### Failure rules" in md

    def test_empty_table_markdown(self, supercloud_db):
        result = mine_keyword_rules(supercloud_db, "unobtainium", MiningConfig())
        md = format_table_markdown(format_rule_table(result, "none"))
        assert "### none" in md
