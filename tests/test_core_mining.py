"""Unit tests for the mining orchestrator and MiningConfig."""

import pytest

from repro.core import (
    ALGORITHMS,
    KeywordRuleSet,
    MiningConfig,
    mine_frequent_itemsets,
    mine_keyword_rules,
    mine_rules,
)


class TestMiningConfig:
    def test_paper_defaults(self):
        cfg = MiningConfig()
        assert cfg.min_support == 0.05
        assert cfg.max_len == 5
        assert cfg.min_lift == 1.5
        assert cfg.c_lift == 1.5
        assert cfg.c_supp == 1.5
        assert cfg.algorithm == "fpgrowth"

    def test_with_override(self):
        cfg = MiningConfig().with_(min_support=0.1)
        assert cfg.min_support == 0.1
        assert cfg.max_len == 5

    def test_invalid_support(self):
        with pytest.raises(ValueError):
            MiningConfig(min_support=-0.1)

    def test_invalid_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            MiningConfig(algorithm="magic")

    def test_invalid_min_lift(self):
        with pytest.raises(ValueError, match="min_lift must be >= 0"):
            MiningConfig(min_lift=-0.5)

    @pytest.mark.parametrize("value", [-0.1, 1.5])
    def test_invalid_min_confidence(self, value):
        with pytest.raises(ValueError, match=r"min_confidence must be in \[0, 1\]"):
            MiningConfig(min_confidence=value)

    @pytest.mark.parametrize("value", [0, -3])
    def test_invalid_max_len(self, value):
        with pytest.raises(ValueError, match="max_len must be >= 1"):
            MiningConfig(max_len=value)

    def test_max_len_none_allowed(self):
        assert MiningConfig(max_len=None).max_len is None

    @pytest.mark.parametrize("field", ["c_lift", "c_supp"])
    @pytest.mark.parametrize("value", [0.0, -1.0])
    def test_invalid_pruning_constants(self, field, value):
        with pytest.raises(ValueError, match=f"{field} must be > 0"):
            MiningConfig(**{field: value})

    def test_boundary_values_accepted(self):
        cfg = MiningConfig(min_lift=0.0, min_confidence=1.0, max_len=1)
        assert cfg.min_lift == 0.0

    def test_itemset_key_projects_mining_fields(self):
        a = MiningConfig(min_lift=1.5)
        b = MiningConfig(min_lift=3.0)
        assert a.itemset_key == b.itemset_key
        assert a.itemset_key != MiningConfig(min_support=0.1).itemset_key
        assert a.itemset_key != MiningConfig(algorithm="eclat").itemset_key

    def test_pruning_view(self):
        cfg = MiningConfig(c_lift=2.0, c_supp=3.0)
        assert cfg.pruning.c_lift == 2.0
        assert cfg.pruning.c_supp == 3.0


class TestMineFrequentItemsets:
    @pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
    def test_all_algorithms_run(self, toy_db, algorithm):
        cfg = MiningConfig(min_support=0.4, algorithm=algorithm)
        fis = mine_frequent_itemsets(toy_db, cfg)
        assert len(fis) > 0
        assert fis.n_transactions == len(toy_db)

    def test_algorithms_agree_through_orchestrator(self, toy_db):
        results = {
            algo: mine_frequent_itemsets(
                toy_db, MiningConfig(min_support=0.4, algorithm=algo)
            ).counts
            for algo in ALGORITHMS
        }
        values = list(results.values())
        assert all(v == values[0] for v in values)


class TestMineKeywordRules:
    def test_split_into_cause_and_characteristic(self, toy_db):
        cfg = MiningConfig(min_support=0.4, min_lift=1.0)
        result = mine_keyword_rules(toy_db, "beer", cfg)
        assert isinstance(result, KeywordRuleSet)
        beer = result.keyword
        assert all(beer in r.consequent for r in result.cause)
        assert all(beer in r.antecedent for r in result.characteristic)
        assert len(result) == len(result.cause) + len(result.characteristic)

    def test_unknown_keyword_empty_result(self, toy_db):
        result = mine_keyword_rules(toy_db, "unobtainium", MiningConfig())
        assert len(result) == 0
        assert result.n_rules_before_pruning == 0

    def test_precomputed_itemsets_reused(self, toy_db):
        cfg = MiningConfig(min_support=0.4, min_lift=1.0)
        fis = mine_frequent_itemsets(toy_db, cfg)
        a = mine_keyword_rules(toy_db, "beer", cfg, itemsets=fis)
        b = mine_keyword_rules(toy_db, "beer", cfg)
        assert [str(r) for r in a.all_rules] == [str(r) for r in b.all_rules]

    def test_report_accounts_for_all_rules(self, toy_db):
        cfg = MiningConfig(min_support=0.2, min_lift=1.0)
        result = mine_keyword_rules(toy_db, "beer", cfg)
        assert result.report.n_kept == len(result)
        assert result.report.n_input == result.n_rules_before_pruning

    def test_str_smoke(self, toy_db):
        result = mine_keyword_rules(toy_db, "beer", MiningConfig(min_support=0.4))
        assert "beer" in str(result)


class TestMineRules:
    def test_lift_floor_respected(self, toy_db):
        rules = mine_rules(toy_db, MiningConfig(min_support=0.2, min_lift=1.2))
        assert all(r.lift >= 1.2 for r in rules)
