"""Unit tests for ColumnTable."""

import numpy as np
import pytest

from repro.dataframe import ColumnTable, NumericColumn


@pytest.fixture()
def table():
    return ColumnTable.from_dict(
        {
            "user": ["alice", "bob", "alice", "carol"],
            "runtime": [10.0, 20.0, None, 40.0],
            "failed": [True, False, False, True],
        }
    )


class TestConstruction:
    def test_from_dict_infers_types(self, table):
        assert table.n_rows == 4
        assert table.column_names == ["user", "runtime", "failed"]

    def test_from_records_fills_missing_keys(self):
        t = ColumnTable.from_records([{"a": 1}, {"b": "x"}])
        assert t.to_dict() == {"a": [1.0, None], "b": [None, "x"]}

    def test_length_mismatch_rejected(self):
        t = ColumnTable.from_dict({"a": [1, 2]})
        with pytest.raises(ValueError):
            t.add_column("b", [1])

    def test_numpy_numeric_wrapped_without_inference(self):
        t = ColumnTable.from_dict({"x": np.asarray([1, 2, 3])})
        assert isinstance(t["x"], NumericColumn)

    def test_missing_column_keyerror_names_candidates(self, table):
        with pytest.raises(KeyError, match="runtime"):
            table["nope"]


class TestSelection:
    def test_row_materialises_one_dict(self, table):
        assert table.row(2) == {"user": "alice", "runtime": None, "failed": False}

    def test_row_out_of_range(self, table):
        with pytest.raises(IndexError):
            table.row(99)

    def test_filter_equals(self, table):
        sub = table.filter_equals("user", "alice")
        assert len(sub) == 2
        assert sub["runtime"].to_list() == [10.0, None]

    def test_filter_mask(self, table):
        sub = table.filter_mask(np.asarray([True, False, False, True]))
        assert sub["user"].to_list() == ["alice", "carol"]

    def test_filter_rows_predicate(self, table):
        sub = table.filter_rows(lambda r: bool(r["failed"]))
        assert sub["user"].to_list() == ["alice", "carol"]

    def test_dropna_specific_column(self, table):
        sub = table.dropna(["runtime"])
        assert len(sub) == 3

    def test_take_reorders(self, table):
        sub = table.take(np.asarray([3, 0]))
        assert sub["user"].to_list() == ["carol", "alice"]

    def test_head(self, table):
        assert len(table.head(2)) == 2
        assert len(table.head(10)) == 4


class TestSorting:
    def test_sort_numeric_na_last(self, table):
        ordered = table.sort_by("runtime")
        assert ordered["runtime"].to_list() == [10.0, 20.0, 40.0, None]

    def test_sort_numeric_descending(self, table):
        ordered = table.sort_by("runtime", descending=True)
        assert ordered["runtime"].to_list()[:3] == [40.0, 20.0, 10.0]

    def test_sort_categorical_lexicographic(self, table):
        ordered = table.sort_by("user")
        assert ordered["user"].to_list() == ["alice", "alice", "bob", "carol"]


class TestMutationAndExport:
    def test_add_column_replaces(self, table):
        t = table.copy()
        t.add_column("runtime", [1.0, 2.0, 3.0, 4.0])
        assert t["runtime"].to_list() == [1.0, 2.0, 3.0, 4.0]
        # original untouched (copy shares columns but add replaces binding)
        assert table["runtime"].to_list()[0] == 10.0

    def test_drop_columns(self, table):
        t = table.drop_columns(["failed", "ghost"])
        assert t.column_names == ["user", "runtime"]

    def test_select_and_rename(self, table):
        t = table.select(["failed", "user"]).rename({"failed": "f"})
        assert t.column_names == ["f", "user"]

    def test_iter_rows_roundtrip(self, table):
        rows = list(table.iter_rows())
        rebuilt = ColumnTable.from_records(rows)
        assert rebuilt.to_dict() == table.to_dict()

    def test_empty_table(self):
        t = ColumnTable()
        assert len(t) == 0
        assert t.column_names == []
