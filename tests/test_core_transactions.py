"""Unit tests for the CSR transaction database."""

import numpy as np
import pytest

from repro.core import Item, ItemVocabulary, TransactionDatabase


class TestConstruction:
    def test_from_itemsets_sorts_and_dedupes(self):
        db = TransactionDatabase.from_itemsets([["b", "a", "b"], ["a"]])
        assert len(db) == 2
        first = db.transaction(0)
        assert list(first) == sorted(first)
        assert len(first) == 2  # duplicate collapsed

    def test_empty_transactions_allowed(self):
        db = TransactionDatabase.from_itemsets([[], ["a"], []])
        assert len(db) == 3
        assert len(db.transaction(0)) == 0

    def test_from_onehot(self):
        matrix = np.asarray([[1, 0, 1], [0, 1, 0]], dtype=bool)
        db = TransactionDatabase.from_onehot(matrix, ["a", "b", "c"])
        assert len(db) == 2
        assert db.support_count(["a", "c"]) == 1
        assert db.support_count(["b"]) == 1

    def test_from_onehot_shape_mismatch(self):
        with pytest.raises(ValueError):
            TransactionDatabase.from_onehot(np.zeros((2, 2), bool), ["a"])

    def test_from_onehot_duplicate_items_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TransactionDatabase.from_onehot(np.zeros((1, 2), bool), ["a", "a"])

    def test_invalid_indptr_rejected(self):
        vocab = ItemVocabulary(["a"])
        with pytest.raises(ValueError):
            TransactionDatabase(vocab, np.asarray([1, 1]), np.asarray([], np.int32))

    def test_out_of_range_ids_rejected(self):
        vocab = ItemVocabulary(["a"])
        with pytest.raises(ValueError):
            TransactionDatabase(vocab, np.asarray([0, 1]), np.asarray([5], np.int32))


class TestSupport:
    def test_item_support_counts(self, toy_db):
        counts = toy_db.item_support_counts()
        by_item = {
            toy_db.vocabulary.item_of(i).render(): int(c) for i, c in enumerate(counts)
        }
        assert by_item["bread"] == 4
        assert by_item["milk"] == 4
        assert by_item["diapers"] == 4
        assert by_item["beer"] == 3

    def test_support_count_of_pair(self, toy_db):
        assert toy_db.support_count(["diapers", "beer"]) == 3

    def test_support_relative(self, toy_db):
        assert toy_db.support(["diapers", "beer"]) == pytest.approx(0.6)

    def test_empty_itemset_supported_everywhere(self, toy_db):
        assert toy_db.support_count([]) == len(toy_db)

    def test_support_by_item_object_and_id(self, toy_db):
        by_name = toy_db.support_count(["bread"])
        item_id = toy_db.vocabulary.id_of(Item.flag("bread"))
        assert toy_db.support_count([item_id]) == by_name

    def test_unknown_id_rejected(self, toy_db):
        with pytest.raises(KeyError):
            toy_db.support_count([999])

    def test_bitmaps_match_counts(self, toy_db):
        bitmaps = toy_db.bitmaps()
        counts = toy_db.item_support_counts()
        assert (bitmaps.item_counts() == counts).all()


class TestProjections:
    def test_restrict_items_keeps_n_transactions(self, toy_db):
        keep = [toy_db.vocabulary.id_of("bread")]
        sub = toy_db.restrict_items(keep)
        assert len(sub) == len(toy_db)
        assert sub.support_count(["bread"]) == 4
        assert sub.item_support_counts().sum() == 4

    def test_restrict_items_with_empty_transactions(self):
        db = TransactionDatabase.from_itemsets([[], ["a", "b"], ["b"]])
        sub = db.restrict_items([db.vocabulary.id_of("a")])
        assert len(sub) == 3
        assert sub.support_count(["a"]) == 1

    def test_sample_selects_rows(self, toy_db):
        sub = toy_db.sample([0, 4])
        assert len(sub) == 2
        assert sub.support_count(["bread"]) == 2

    def test_split_partitions_cover_everything(self, toy_db):
        parts = toy_db.split(2)
        assert sum(len(p) for p in parts) == len(toy_db)

    def test_split_more_parts_than_rows(self):
        db = TransactionDatabase.from_itemsets([["a"], ["b"]])
        parts = db.split(5)
        assert sum(len(p) for p in parts) == 2

    def test_split_invalid(self, toy_db):
        with pytest.raises(ValueError):
            toy_db.split(0)

    def test_iter_item_transactions_roundtrip(self, toy_db):
        decoded = list(toy_db.iter_item_transactions())
        assert len(decoded) == 5
        assert Item.flag("bread") in decoded[0]


class TestFingerprint:
    """Content addressing: equal content ⇔ equal key, any perturbation differs."""

    TXNS = [
        ["bread", "milk"],
        ["bread", "diapers", "beer", "eggs"],
        ["milk", "diapers", "beer", "cola"],
        ["bread", "milk", "diapers", "beer"],
        ["bread", "milk", "diapers", "cola"],
    ]

    def test_equal_content_equal_key(self):
        a = TransactionDatabase.from_itemsets(self.TXNS)
        b = TransactionDatabase.from_itemsets([list(t) for t in self.TXNS])
        assert a.fingerprint() == b.fingerprint()

    def test_stable_across_calls(self, toy_db):
        assert toy_db.fingerprint() == toy_db.fingerprint()

    def test_transaction_perturbations_change_key(self):
        import random

        rng = random.Random(7)
        base = TransactionDatabase.from_itemsets(self.TXNS)
        seen = {base.fingerprint()}
        # property-style loop: drop a transaction, drop an item, add an
        # item, or rename an item — every perturbation must change the key
        for trial in range(30):
            txns = [list(t) for t in self.TXNS]
            kind = trial % 4
            if kind == 0:
                txns.pop(rng.randrange(len(txns)))
            elif kind == 1:
                t = txns[rng.randrange(len(txns))]
                if len(t) > 1:
                    t.pop(rng.randrange(len(t)))
                else:
                    t.append("extra")
            elif kind == 2:
                txns[rng.randrange(len(txns))].append(f"new{trial}")
            else:
                i = rng.randrange(len(txns))
                j = rng.randrange(len(txns[i]))
                txns[i][j] = txns[i][j] + "_renamed"
            fp = TransactionDatabase.from_itemsets(txns).fingerprint()
            assert fp != base.fingerprint(), f"perturbation {trial} collided"
            seen.add(fp)
        assert len(seen) > 1

    def test_vocabulary_identity_matters(self):
        # same index structure over different item names must differ
        a = TransactionDatabase.from_itemsets([["a", "b"], ["a"]])
        b = TransactionDatabase.from_itemsets([["x", "y"], ["x"]])
        assert a.fingerprint() != b.fingerprint()

    def test_transaction_order_matters(self):
        a = TransactionDatabase.from_itemsets([["a"], ["b"]])
        b = TransactionDatabase.from_itemsets([["b"], ["a"]])
        assert a.fingerprint() != b.fingerprint()

    def test_empty_vs_nonempty(self):
        empty = TransactionDatabase.from_itemsets([])
        one = TransactionDatabase.from_itemsets([["a"]])
        assert empty.fingerprint() != one.fingerprint()
