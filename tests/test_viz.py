"""Tests for the figure-data substrate (CDF, box stats, scatter, ascii)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MiningConfig, mine_rules
from repro.viz import (
    bar_chart,
    box_chart,
    box_stats,
    cdf_chart,
    empirical_cdf,
    pruning_scatter,
    rule_scatter,
    series_table,
)


class TestCDF:
    def test_basic_staircase(self):
        cdf = empirical_cdf(np.asarray([1.0, 2.0, 2.0, 4.0]))
        assert cdf.at(0.5) == 0.0
        assert cdf.at(1.0) == pytest.approx(0.25)
        assert cdf.at(2.0) == pytest.approx(0.75)
        assert cdf.at(100.0) == 1.0

    def test_quantile_inverse(self):
        cdf = empirical_cdf(np.arange(100, dtype=float))
        assert cdf.quantile(0.5) == pytest.approx(49.0)
        assert cdf.quantile(1.0) == 99.0

    def test_nan_dropped(self):
        cdf = empirical_cdf(np.asarray([np.nan, 1.0]))
        assert cdf.at(1.0) == 1.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf(np.asarray([]))

    def test_invalid_quantile(self):
        cdf = empirical_cdf(np.asarray([1.0]))
        with pytest.raises(ValueError):
            cdf.quantile(1.5)

    def test_near_zero_share_fig4_usage(self):
        values = np.asarray([0.0] * 46 + list(range(1, 55)), dtype=float)
        cdf = empirical_cdf(values)
        assert cdf.share_at_most(0.0) == pytest.approx(0.46)

    @given(st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=1, max_size=100))
    @settings(max_examples=80, deadline=None)
    def test_monotone_in_0_1(self, values):
        cdf = empirical_cdf(np.asarray(values))
        assert (np.diff(cdf.fractions) >= -1e-12).all()
        assert cdf.fractions[-1] == pytest.approx(1.0)


class TestBoxStats:
    def test_five_numbers(self):
        s = box_stats(np.arange(1, 102, dtype=float))
        assert s.minimum == 1.0
        assert s.median == 51.0
        assert s.maximum == 101.0
        assert s.q1 == 26.0 and s.q3 == 76.0
        assert s.iqr == 50.0

    def test_outliers_beyond_whiskers(self):
        values = np.asarray([1.0] * 50 + [2.0] * 50 + [100.0])
        s = box_stats(values)
        assert s.n_outliers == 1
        assert s.whisker_high < 100.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            box_stats([])

    def test_as_dict(self):
        d = box_stats([1.0, 2.0, 3.0]).as_dict()
        assert d["median"] == 2.0

    @given(st.lists(st.floats(-1e3, 1e3, allow_nan=False), min_size=1, max_size=60))
    @settings(max_examples=80, deadline=None)
    def test_ordering_invariants(self, values):
        s = box_stats(np.asarray(values))
        assert s.minimum <= s.q1 <= s.median <= s.q3 <= s.maximum
        assert s.whisker_low <= s.whisker_high or s.n == 0


class TestScatter:
    def test_rule_scatter_coordinates(self, toy_db):
        rules = mine_rules(toy_db, MiningConfig(min_support=0.2, min_lift=0.0))
        scatter = rule_scatter(rules)
        assert len(scatter) == len(rules)
        assert scatter.lift.shape == scatter.support.shape

    def test_pruning_scatter_panels(self, toy_db):
        rules = mine_rules(toy_db, MiningConfig(min_support=0.2, min_lift=0.0))
        panels = pruning_scatter(rules, rules[:2])
        assert len(panels["before"]) == len(rules)
        assert len(panels["after"]) == 2

    def test_lift_histogram(self, toy_db):
        rules = mine_rules(toy_db, MiningConfig(min_support=0.2, min_lift=0.0))
        counts, edges = rule_scatter(rules).lift_histogram(5)
        assert counts.sum() == len(rules)


class TestAscii:
    def test_bar_chart_renders_values(self):
        text = bar_chart({"failed": 0.25, "completed": 0.75}, title="Fig5")
        assert "Fig5" in text and "25.0%" in text and "█" in text

    def test_bar_chart_empty(self):
        assert bar_chart({}, title="t") == "t"

    def test_cdf_chart(self):
        cdf = empirical_cdf(np.asarray([0.0, 0.0, 50.0, 100.0]))
        text = cdf_chart(cdf, [0, 50, 100])
        assert "≤0" in text and "≤100" in text

    def test_box_chart(self):
        text = box_chart({"pai": box_stats([1.0, 2.0, 3.0])})
        assert "pai" in text and "median" in text

    def test_series_table(self):
        text = series_table("supp", [0.01, 0.05], {"PAI": [100, 10]})
        assert "PAI" in text and "0.05" in text

    def test_series_table_length_mismatch(self):
        with pytest.raises(ValueError):
            series_table("x", [1], {"s": [1, 2]})
