"""Tests for the shared-memory data plane (repro.shm).

Covers the segment format itself (header validation, alignment,
lifecycle, stale-segment GC), the two published artifacts (transaction
database, compiled rule plane) — attached views must be *bit-identical*
to the source and strictly read-only — and the consumers: spawn-safe
process-backend mining and segment-shipped serving hot-swap, each with
its per-worker fallback path.
"""

import asyncio
import json
import os
import random
import signal
import subprocess
import sys
import warnings
from pathlib import Path

import numpy as np
import pytest

from repro.core import MiningConfig
from repro.engine import MiningEngine, ProcessBackend, SerialBackend
from repro.serve import RuleBook, RuleIndex, RuleService, RuleServiceClient
from repro.serve.client import ServiceError
from repro.shm import (
    SegmentError,
    attach_database,
    attach_rule_plane,
    attach_segment,
    gc_stale_segments,
    list_segments,
    publish_database,
    publish_rule_plane,
    publish_segment,
    shm_available,
)
from repro.shm.database import clear_database_leases
from repro.shm.segment import NO_SHM_ENV, _SHM_DIR, segment_name

from .test_serve_rulebook import random_rules

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="POSIX shared memory unavailable"
)


def run(coro):
    return asyncio.run(coro)


def make_index(seed=0, n_rules=40, n_items=20) -> RuleIndex:
    book = RuleBook(rules=random_rules(random.Random(seed), n_rules, n_items))
    return RuleIndex.from_rulebook(book)


# -- segment format and lifecycle ------------------------------------------------


class TestSegmentCore:
    def test_roundtrip_arrays_and_blobs(self):
        arrays = {
            "a": np.arange(7, dtype=np.int64),
            "b": np.linspace(0.0, 1.0, 13),
            "empty": np.zeros(0, dtype=np.uint64),
            "matrix": np.arange(12, dtype=np.uint64).reshape(3, 4),
        }
        blobs = {"payload": "café".encode("utf-8"), "none": b""}
        lease = publish_segment(
            "d", "feedfacefeed", arrays=arrays, blobs=blobs,
            meta={"answer": 42}, generation=3,
        )
        try:
            seg = attach_segment(lease.name)
            assert seg.fingerprint == "feedfacefeed"
            assert seg.generation == 3
            assert seg.meta["answer"] == 42
            for name, source in arrays.items():
                got = seg.arrays[name]
                assert got.dtype == source.dtype
                assert got.shape == source.shape
                np.testing.assert_array_equal(got, source)
                assert not got.flags.writeable
            assert seg.blob_bytes("payload") == blobs["payload"]
            assert seg.blob_bytes("none") == b""
            seg.close()
        finally:
            lease.unlink()
            lease.unlink()  # idempotent
        with pytest.raises(SegmentError):
            attach_segment(lease.name)

    def test_publish_is_memoised_by_name(self):
        arrays = {"a": np.arange(4)}
        first = publish_segment("d", "0123456789ab", arrays=arrays)
        second = publish_segment("d", "0123456789ab", arrays=arrays)
        try:
            assert first is second
        finally:
            first.unlink()

    def test_attach_rejects_foreign_payload(self):
        name = segment_name("d", "badc0ffee000", 0)
        path = Path(_SHM_DIR) / name
        path.write_bytes(b"NOPE" + b"\x00" * 64)
        try:
            with pytest.raises(SegmentError):
                attach_segment(name)
        finally:
            path.unlink()

    def test_gc_reaps_dead_owner_segments(self):
        # a name claiming a pid that cannot exist: its owner is "dead"
        name = f"rsm.d.deadbeef00.{2**22 + 1}.g0"
        (Path(_SHM_DIR) / name).write_bytes(b"\x00" * 16)
        assert name in list_segments()
        removed = gc_stale_segments()
        assert name in removed
        assert name not in list_segments()

    def test_live_owner_segments_survive_gc(self):
        lease = publish_database_toy()
        try:
            assert lease.name not in gc_stale_segments()
            assert lease.name in list_segments(["d"])
        finally:
            clear_database_leases()


def publish_database_toy():
    from repro.core import TransactionDatabase

    db = TransactionDatabase.from_itemsets(
        [["a", "b"], ["b", "c"], ["a", "b", "c"]]
    )
    return publish_database(db)


# -- the database plane ----------------------------------------------------------


@pytest.mark.parametrize("trace_db", ["pai_db", "supercloud_db", "philly_db"])
class TestDatabasePlane:
    def test_attached_views_bit_identical(self, trace_db, request):
        db = request.getfixturevalue(trace_db)
        lease = publish_database(db)
        att = attach_database(lease.name)
        try:
            np.testing.assert_array_equal(att.indptr, db.indptr)
            np.testing.assert_array_equal(att.indices, db.indices)
            np.testing.assert_array_equal(
                att.bitmaps().words, db.bitmaps().words
            )
            assert att.fingerprint() == db.fingerprint()
            assert len(att) == len(db)
            assert list(att.vocabulary) == list(db.vocabulary)
        finally:
            att.shm_segment.close()
            clear_database_leases()

    def test_attached_views_are_read_only(self, trace_db, request):
        db = request.getfixturevalue(trace_db)
        lease = publish_database(db)
        att = attach_database(lease.name)
        try:
            for target in (att.indptr, att.indices, att.bitmaps().words):
                with pytest.raises(ValueError):
                    target[..., 0] = 1
        finally:
            att.shm_segment.close()
            clear_database_leases()

    def test_mining_from_attached_matches_source(self, trace_db, request):
        db = request.getfixturevalue(trace_db)
        config = MiningConfig()
        lease = publish_database(db)
        att = attach_database(lease.name)
        try:
            expected = SerialBackend().resolve(db).mine(db, config)
            got = SerialBackend().resolve(att).mine(att, config)
            assert dict(got.counts) == dict(expected.counts)
        finally:
            att.shm_segment.close()
            clear_database_leases()


# -- the rule plane --------------------------------------------------------------


class TestRulePlane:
    def attach_pair(self, seed=7, tag="tag-xyz"):
        local = make_index(seed=seed)
        lease = publish_rule_plane(local, generation=1, version_tag=tag)
        att, meta = attach_rule_plane(lease.name)
        return local, lease, att, meta

    def sample_transactions(self, index, seed=3, n=40):
        rng = random.Random(seed)
        items = [str(item) for item in index.table.vocabulary]
        txns = [rng.sample(items, k=rng.randint(1, min(6, len(items))))
                for _ in range(n)]
        # guarantee some full antecedents fire
        for rule in index.rules[:5]:
            txns.append([str(i) for i in rule.antecedent])
        return txns

    def test_attach_equals_compile(self):
        local, lease, att, meta = self.attach_pair()
        try:
            assert meta["version_tag"] == "tag-xyz"
            assert meta["n_rules"] == len(local)
            assert len(att) == len(local)
            for txn in self.sample_transactions(local):
                assert att.match_wire(txn) == local.match_wire(txn)
                assert att.explain(txn) == local.explain(txn)
        finally:
            lease.unlink()

    def test_batch_path_needs_no_scalar_build(self):
        local, lease, att, _ = self.attach_pair(seed=11)
        try:
            txns = self.sample_transactions(local, seed=5)
            assert att._postings is None  # compiled-only construction
            got = att.match_wire_batch(txns)
            assert att._postings is None  # batch path stayed compiled-only
            assert got == local.match_wire_batch(txns)
        finally:
            lease.unlink()

    def test_attached_columns_read_only(self):
        local, lease, att, _ = self.attach_pair(seed=13)
        try:
            for column in (
                att.table.support, att.table.lift, att.table.ant_ids,
                att.kernel.ant_masks, att.kernel.cons_masks,
            ):
                with pytest.raises(ValueError):
                    column[..., 0] = 1
        finally:
            lease.unlink()

    def test_multibyte_wire_fragments_never_tear(self):
        rules = random_rules(random.Random(2), 25, 12)
        book = RuleBook(rules=rules)
        local = RuleIndex.from_rulebook(book)
        # force multi-byte spellings through the wire blob
        lease = publish_rule_plane(local, generation=2)
        att, _ = attach_rule_plane(lease.name)
        try:
            for miss, hit in att._wire_json:
                json.loads(miss)  # every fragment is standalone JSON
                json.loads(hit)
            assert att._wire_json == local._wire_json
        finally:
            lease.unlink()


# -- spawn-safe process backend --------------------------------------------------


class TestProcessBackendShm:
    def test_shm_plan_matches_serial(self, pai_db, default_config):
        resolved = ProcessBackend(n_workers=2, n_partitions=4).resolve(pai_db)
        got = resolved.mine(pai_db, default_config)
        expected = SerialBackend().resolve(pai_db).mine(pai_db, default_config)
        assert resolved.effective_plan.startswith("process:shm-")
        assert not resolved.downgraded
        assert dict(got.counts) == dict(expected.counts)
        clear_database_leases()

    def test_no_shm_env_is_clean_fallback(self, pai_db, default_config, monkeypatch):
        monkeypatch.setenv(NO_SHM_ENV, "1")
        resolved = ProcessBackend(n_workers=2, n_partitions=4).resolve(pai_db)
        got = resolved.mine(pai_db, default_config)
        expected = SerialBackend().resolve(pai_db).mine(pai_db, default_config)
        assert resolved.effective_plan == "process:pickle"
        assert not resolved.downgraded  # explicit opt-out, not a downgrade
        assert dict(got.counts) == dict(expected.counts)

    def test_platform_downgrade_warns_through_engine(
        self, toy_db, monkeypatch
    ):
        import repro.engine.backends as backends

        monkeypatch.setattr(backends, "shm_available", lambda: False)
        engine = MiningEngine(
            backend=ProcessBackend(n_workers=2, n_partitions=2), cache=False
        )
        from repro.traces import get_trace

        definition = get_trace("pai")
        table = definition.generate_scaled(n_jobs=300)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            result = engine.analyze(
                definition.make_preprocessor(), table,
                {"q": "Status = Failed"}, MiningConfig(),
            )
        stats = result.stats
        assert stats.backend_effective == "process:pickle"
        assert stats.backend_downgraded
        assert any("downgraded" in str(w.message) for w in caught)
        assert "downgraded" in stats.render()

    def test_spawn_start_method_equality(self):
        script = Path(__file__).with_name("_spawn_mining_check.py")
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[1] / "src")
        env["PYTHONPATH"] = (
            f"{src}{os.pathsep}{env['PYTHONPATH']}"
            if env.get("PYTHONPATH") else src
        )
        proc = subprocess.run(
            [sys.executable, str(script)],
            capture_output=True, text=True, timeout=300, env=env,
        )
        assert proc.returncode == 0, proc.stderr
        assert "SPAWN_MINING_OK plan=process:shm-spawn" in proc.stdout


# -- serving hot-swap over a segment ---------------------------------------------


class TestServiceSegmentReload:
    def test_reload_from_segment(self, tmp_path):
        old_index = make_index(seed=0)
        new_index = make_index(seed=9, n_rules=55)
        lease = publish_rule_plane(
            new_index, generation=1, version_tag="seg-tag"
        )

        async def scenario():
            service = RuleService(old_index, version_tag="old-tag")
            await service.start(port=0)
            try:
                async with await RuleServiceClient.connect(
                    "127.0.0.1", service.port
                ) as client:
                    result = await client.request(
                        {"type": "reload", "segment": lease.name}
                    )
                    assert result["source"] == "segment"
                    assert result["version"] == 2
                    assert result["n_rules"] == len(new_index)
                    assert result["version_tag"] == "seg-tag"
                    health = await client.healthz()
                    assert health["n_rules"] == len(new_index)
                    assert health["version_tag"] == "seg-tag"
            finally:
                await service.shutdown()

        try:
            run(scenario())
        finally:
            lease.unlink()

    def test_stale_segment_falls_back_to_path(self, tmp_path):
        old_index = make_index(seed=0)
        new_book = RuleBook(rules=random_rules(random.Random(4), 33, 20))
        path = tmp_path / "new.rulebook.jsonl"
        new_book.save(path)

        async def scenario():
            service = RuleService(old_index)
            await service.start(port=0)
            try:
                async with await RuleServiceClient.connect(
                    "127.0.0.1", service.port
                ) as client:
                    result = await client.request(
                        {
                            "type": "reload",
                            "segment": "rsm.r.0000000000.1.g0",
                            "rulebook": str(path),
                        }
                    )
                    assert result["source"] == "path"
                    assert result["n_rules"] == len(new_book)

                    with pytest.raises(ServiceError) as excinfo:
                        await client.request(
                            {
                                "type": "reload",
                                "segment": "rsm.r.0000000000.1.g0",
                            }
                        )
                    assert excinfo.value.code == "reload_failed"

                    with pytest.raises(ServiceError) as excinfo:
                        await client.request({"type": "reload"})
                    assert excinfo.value.code == "bad_request"
            finally:
                await service.shutdown()

        run(scenario())


# -- cluster lifecycle -----------------------------------------------------------


class TestClusterPlaneLifecycle:
    def test_cluster_publishes_swaps_and_unlinks(self, tmp_path):
        from repro.serve.shard import ShardCluster

        book1 = RuleBook(rules=random_rules(random.Random(0), 30, 20))
        book2 = RuleBook(rules=random_rules(random.Random(5), 44, 20))
        p1, p2 = tmp_path / "b1.jsonl", tmp_path / "b2.jsonl"
        book1.save(p1)
        book2.save(p2)

        async def scenario():
            cluster = ShardCluster(str(p1), 2, mode="router")
            await cluster.start()
            try:
                planes = list_segments(["r"])
                assert len(planes) == 1
                assert cluster._plane_lease is not None
                assert cluster._plane_lease.name == planes[0]
                for worker in cluster.workers:
                    assert worker.segment == planes[0]

                report = await cluster.reload(str(p2))
                assert report["status"] == "ok"
                assert report["n_rules"] == len(book2)
                swapped = list_segments(["r"])
                assert len(swapped) == 1 and swapped != planes

                async with await RuleServiceClient.connect(
                    "127.0.0.1", cluster.port
                ) as client:
                    health = await client.healthz()
                    assert health["n_rules"] == len(book2)
            finally:
                await cluster.shutdown()
            assert list_segments(["r"]) == []

        run(scenario())

    def test_cluster_serves_with_shm_disabled(self, tmp_path, monkeypatch):
        from repro.serve.shard import ShardCluster

        monkeypatch.setenv(NO_SHM_ENV, "1")
        book = RuleBook(rules=random_rules(random.Random(1), 25, 20))
        path = tmp_path / "book.jsonl"
        book.save(path)

        async def scenario():
            cluster = ShardCluster(str(path), 2, mode="router")
            await cluster.start()
            try:
                assert cluster._plane_lease is None
                assert list_segments(["r"]) == []
                async with await RuleServiceClient.connect(
                    "127.0.0.1", cluster.port
                ) as client:
                    health = await client.healthz()
                    assert health["n_rules"] == len(book)
            finally:
                await cluster.shutdown()

        run(scenario())

    def test_sigtermed_worker_leaves_no_segments(self, tmp_path):
        from repro.serve.shard import ShardCluster

        book = RuleBook(rules=random_rules(random.Random(2), 25, 20))
        path = tmp_path / "book.jsonl"
        book.save(path)

        async def scenario():
            cluster = ShardCluster(str(path), 2, mode="router")
            await cluster.start()
            try:
                # workers only *attach*; killing one must not disturb
                # the published plane or leak anything
                victim = cluster.workers[0]
                victim.send_signal(signal.SIGTERM)
                await victim.wait(15.0)
                assert len(list_segments(["r"])) == 1
            finally:
                await cluster.shutdown()
            assert list_segments(["r"]) == []

        run(scenario())
