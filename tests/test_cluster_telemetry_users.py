"""Unit tests for telemetry synthesis and the user population."""

import numpy as np
import pytest

from repro.cluster import (
    BehaviorProfile,
    GPUTelemetryModel,
    TelemetryConfig,
    UserPopulation,
)


class TestTelemetryConfig:
    def test_sample_count_scales_with_runtime(self):
        cfg = TelemetryConfig(sample_interval_s=60.0, max_samples_per_job=100)
        assert cfg.n_samples(30.0) >= cfg.min_samples_per_job
        assert cfg.n_samples(1e9) == 100

    def test_validation(self):
        with pytest.raises(ValueError):
            TelemetryConfig(sample_interval_s=0)
        with pytest.raises(ValueError):
            TelemetryConfig(max_samples_per_job=1, min_samples_per_job=5)


class TestTelemetryModel:
    def test_idle_profile_is_exactly_zero(self):
        model = GPUTelemetryModel(seed=1)
        profile = BehaviorProfile(sm_util_mean=0.0, gmem_util_mean=0.0)
        s = model.summarize(profile, 600.0)
        assert s.sm_util_mean == 0.0
        assert s.sm_util_var == 0.0
        assert s.sm_util_max == 0.0
        assert s.gmem_util_mean == 0.0

    def test_active_profile_tracks_mean(self):
        model = GPUTelemetryModel(TelemetryConfig(max_samples_per_job=512), seed=2)
        profile = BehaviorProfile(sm_util_mean=60.0, sm_util_jitter=5.0)
        s = model.summarize(profile, 1e6)
        assert 50.0 <= s.sm_util_mean <= 70.0
        assert s.sm_util_var > 0.0

    def test_bursty_profile_near_zero_mean_high_var(self):
        model = GPUTelemetryModel(TelemetryConfig(max_samples_per_job=512), seed=3)
        profile = BehaviorProfile(
            sm_util_mean=0.45, sm_util_jitter=0.1, burstiness=0.97
        )
        s = model.summarize(profile, 1e6)
        # integer-rounded mean reads as 0 % while variance/max stay positive
        assert s.sm_util_mean == 0.0
        assert s.sm_util_var > 0.0
        assert s.sm_util_max > 0.0

    def test_power_tracks_activity(self):
        model = GPUTelemetryModel(seed=4)
        idle = model.summarize(BehaviorProfile(sm_util_mean=0.0), 600.0)
        busy = model.summarize(BehaviorProfile(sm_util_mean=90.0), 600.0)
        assert busy.gpu_power_mean > idle.gpu_power_mean

    def test_values_clipped_to_percent_range(self):
        model = GPUTelemetryModel(seed=5)
        series = model.series(
            BehaviorProfile(sm_util_mean=99.0, sm_util_jitter=50.0), 600.0
        )
        assert series["sm_util"].min() >= 0.0
        assert series["sm_util"].max() <= 100.0

    def test_as_dict_keys(self):
        s = GPUTelemetryModel(seed=6).summarize(BehaviorProfile(), 60.0)
        assert set(s.as_dict()) == {
            "sm_util", "sm_util_var", "sm_util_min", "sm_util_max",
            "gmem_util", "gmem_util_var", "gmem_used_gb", "gpu_power",
            "cpu_util",
        }

    def test_deterministic_for_seed(self):
        a = GPUTelemetryModel(seed=7).summarize(BehaviorProfile(), 600.0)
        b = GPUTelemetryModel(seed=7).summarize(BehaviorProfile(), 600.0)
        assert a == b


class TestUserPopulation:
    def test_weights_sum_to_one(self):
        pop = UserPopulation(50, seed=1)
        assert sum(u.weight for u in pop.users) == pytest.approx(1.0)

    def test_skewed_activity(self):
        pop = UserPopulation(100, seed=2)
        weights = sorted((u.weight for u in pop.users), reverse=True)
        assert weights[0] > 10 * weights[-1]

    def test_top_decile_never_new(self):
        pop = UserPopulation(100, new_user_fraction=1.0, seed=3)
        assert not any(u.is_new for u in pop.users[:10])
        assert any(u.is_new for u in pop.users[10:])

    def test_sampling_respects_weights(self):
        pop = UserPopulation(20, seed=4, zipf_exponent=2.0)
        draws = pop.sample(2000)
        top = pop.users[0].name
        share = sum(1 for u in draws if u.name == top) / len(draws)
        assert share > 0.3

    def test_new_users_listing(self):
        pop = UserPopulation(50, new_user_fraction=0.4, seed=5)
        assert set(pop.new_users()) == {u for u in pop.users if u.is_new}

    def test_validation(self):
        with pytest.raises(ValueError):
            UserPopulation(0)
        with pytest.raises(ValueError):
            UserPopulation(5, new_user_fraction=1.5)
        with pytest.raises(ValueError):
            UserPopulation(5, new_user_weight_damp=-1)
