"""Unit tests for the discrete-event FCFS scheduler."""

import pytest

from repro.cluster import (
    ClusterSpec,
    FCFSScheduler,
    JobRequest,
    NodeSpec,
    build_nodes,
)


def nodes(n_gpus=2, count=1, gpu_type="V100", n_cpus=32, mem=128.0):
    return build_nodes(
        ClusterSpec.of((NodeSpec("n", gpu_type, n_gpus, n_cpus, mem), count))
    )


def job(job_id, submit, runtime, n_gpus=1, gpu_type=None, n_cpus=1, mem=1.0):
    return JobRequest(
        job_id=job_id,
        user="u",
        submit_time=submit,
        runtime=runtime,
        n_gpus=n_gpus,
        n_cpus=n_cpus,
        mem_gb=mem,
        gpu_type=gpu_type,
    )


class TestBasicScheduling:
    def test_immediate_start_when_free(self):
        placements, stats = FCFSScheduler(nodes()).run([job(0, 10.0, 5.0)])
        assert placements[0].start_time == 10.0
        assert placements[0].end_time == 15.0
        assert stats.mean_queue_delay == 0.0

    def test_queueing_under_contention(self):
        # 1 node × 2 GPUs; three 2-GPU jobs arrive together → serialised
        jobs = [job(i, 0.0, 10.0, n_gpus=2) for i in range(3)]
        placements, stats = FCFSScheduler(nodes()).run(jobs)
        starts = sorted(p.start_time for p in placements)
        assert starts == [0.0, 10.0, 20.0]
        assert stats.max_queue_length >= 2

    def test_results_in_request_order(self):
        jobs = [job(1, 5.0, 1.0), job(0, 0.0, 1.0)]
        placements, _ = FCFSScheduler(nodes()).run(jobs)
        assert [p.request.job_id for p in placements] == [1, 0]

    def test_capacity_freed_at_completion(self):
        jobs = [job(0, 0.0, 10.0, n_gpus=2), job(1, 2.0, 1.0, n_gpus=2)]
        placements, _ = FCFSScheduler(nodes()).run(jobs)
        assert placements[1].start_time == 10.0  # waits for the first


class TestTypeAwareness:
    def test_typed_request_goes_to_matching_pool(self):
        cluster = build_nodes(
            ClusterSpec.of(
                (NodeSpec("a", "T4", 2, 32, 128), 1),
                (NodeSpec("b", "V100", 2, 32, 128), 1),
            )
        )
        placements, _ = FCFSScheduler(cluster).run(
            [job(0, 0.0, 1.0, gpu_type="V100")]
        )
        assert placements[0].gpu_type == "V100"

    def test_untyped_request_uses_any_pool(self):
        cluster = build_nodes(
            ClusterSpec.of(
                (NodeSpec("a", "T4", 1, 32, 128), 1),
                (NodeSpec("b", "V100", 1, 32, 128), 1),
            )
        )
        jobs = [job(0, 0.0, 100.0), job(1, 0.0, 100.0)]
        placements, _ = FCFSScheduler(cluster).run(jobs)
        assert {p.gpu_type for p in placements} == {"T4", "V100"}

    def test_impossible_request_raises(self):
        with pytest.raises(RuntimeError, match="never be scheduled"):
            FCFSScheduler(nodes()).run([job(0, 0.0, 1.0, gpu_type="H100")])

    def test_oversized_request_raises(self):
        with pytest.raises(RuntimeError, match="never be scheduled"):
            FCFSScheduler(nodes(n_gpus=2, count=1)).run(
                [job(0, 0.0, 1.0, n_gpus=3, gpu_type="V100")]
            )


class TestGangAllocation:
    def test_spans_nodes(self):
        placements, _ = FCFSScheduler(nodes(n_gpus=2, count=3)).run(
            [job(0, 0.0, 1.0, n_gpus=6, gpu_type="V100")]
        )
        assert sum(g for _, g in placements[0].allocations) == 6
        assert len(placements[0].allocations) == 3

    def test_gang_releases_everything(self):
        jobs = [
            job(0, 0.0, 5.0, n_gpus=6, gpu_type="V100"),
            job(1, 1.0, 1.0, n_gpus=6, gpu_type="V100"),
        ]
        placements, _ = FCFSScheduler(nodes(n_gpus=2, count=3)).run(jobs)
        assert placements[1].start_time == 5.0


class TestBackfill:
    def test_small_job_overtakes_when_backfilling(self):
        # 2-GPU node: job0 occupies both; job1 wants 2 (blocked);
        # job2 wants 1... still blocked while job0 holds 2. Use a second
        # node so job2 can run while job1 queues.
        cluster = nodes(n_gpus=2, count=1)
        jobs = [
            job(0, 0.0, 10.0, n_gpus=2),
            job(1, 1.0, 10.0, n_gpus=2),
            job(2, 2.0, 1.0, n_gpus=1),
        ]
        # relaxed FCFS: job2 cannot fit anyway until t=10 here
        placements, _ = FCFSScheduler(cluster, strict_fcfs=False).run(jobs)
        assert placements[2].start_time >= 10.0

    def test_strict_fcfs_blocks_queue_behind_head(self):
        cluster = nodes(n_gpus=2, count=1)
        jobs = [
            job(0, 0.0, 10.0, n_gpus=2),
            job(1, 1.0, 10.0, n_gpus=2),  # head of queue at t=2
            job(2, 2.0, 1.0, n_gpus=1),
        ]
        strict, _ = FCFSScheduler(nodes(n_gpus=2, count=1), strict_fcfs=True).run(jobs)
        relaxed, _ = FCFSScheduler(nodes(n_gpus=2, count=1), strict_fcfs=False).run(jobs)
        assert strict[2].start_time >= relaxed[2].start_time

    def test_backfill_uses_idle_capacity(self):
        # two nodes; head job needs 4 GPUs (both nodes), a later 1-GPU job
        # can backfill onto the idle second node under relaxed FCFS
        jobs = [
            job(0, 0.0, 10.0, n_gpus=2),
            job(1, 1.0, 10.0, n_gpus=4),  # must wait for both nodes
            job(2, 2.0, 1.0, n_gpus=1),
        ]
        relaxed, _ = FCFSScheduler(nodes(n_gpus=2, count=2)).run(jobs)
        assert relaxed[2].start_time == 2.0
        # strict FCFS: job2 waits behind the 4-GPU head job, which itself
        # waits for job0 — so job2 cannot start before t = 20
        strict, _ = FCFSScheduler(nodes(n_gpus=2, count=2), strict_fcfs=True).run(jobs)
        assert strict[2].start_time == 20.0


class TestAccounting:
    def test_zero_gpu_jobs_allowed(self):
        placements, _ = FCFSScheduler(nodes()).run(
            [job(0, 0.0, 1.0, n_gpus=0, n_cpus=4)]
        )
        assert placements[0].start_time == 0.0

    def test_stats_totals(self):
        jobs = [job(i, 0.0, 10.0, n_gpus=2) for i in range(2)]
        _, stats = FCFSScheduler(nodes()).run(jobs)
        assert stats.n_scheduled == 2
        assert stats.total_queue_delay == 10.0
        assert stats.mean_queue_delay == 5.0

    def test_empty_workload(self):
        placements, stats = FCFSScheduler(nodes()).run([])
        assert placements == []
        assert stats.n_scheduled == 0

    def test_requires_nodes(self):
        with pytest.raises(ValueError):
            FCFSScheduler([])
