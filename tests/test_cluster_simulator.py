"""Integration tests for the end-to-end cluster simulator."""

import pytest

from repro.cluster import (
    BehaviorProfile,
    ClusterSimulator,
    ClusterSpec,
    JobRequest,
    JobStatus,
    NodeSpec,
    TelemetryConfig,
)


@pytest.fixture()
def cluster():
    return ClusterSpec.of((NodeSpec("n", "V100", 4, 64, 256), 2))


def workload(n=20):
    jobs = []
    for i in range(n):
        jobs.append(
            JobRequest(
                job_id=i,
                user=f"u{i % 3}",
                submit_time=float(i * 10),
                runtime=30.0,
                n_gpus=1 + (i % 2),
                n_cpus=4,
                mem_gb=8.0,
                gpu_type="V100",
                status=JobStatus.FAILED if i % 5 == 0 else JobStatus.COMPLETED,
                profile=BehaviorProfile(sm_util_mean=0.0 if i % 4 == 0 else 50.0),
                extras={"tag": i},
            )
        )
    return jobs


class TestSimulator:
    def test_every_job_gets_a_record(self, cluster):
        result = ClusterSimulator(cluster, seed=1).run(workload())
        assert len(result.records) == 20
        assert result.scheduler_stats.n_scheduled == 20

    def test_records_in_request_order(self, cluster):
        result = ClusterSimulator(cluster, seed=1).run(workload())
        assert [r.request.job_id for r in result.records] == list(range(20))

    def test_telemetry_respects_profile(self, cluster):
        result = ClusterSimulator(cluster, seed=1).run(workload())
        for record in result.records:
            if record.request.profile.sm_util_mean == 0.0:
                assert record.telemetry["sm_util"] == 0.0
            else:
                assert record.telemetry["sm_util"] > 0.0

    def test_to_table_shape(self, cluster):
        table = ClusterSimulator(cluster, seed=1).run(workload()).to_table()
        assert len(table) == 20
        for column in ("queue_delay", "sm_util", "status", "tag"):
            assert column in table

    def test_queue_delays_nonnegative(self, cluster):
        table = ClusterSimulator(cluster, seed=1).run(workload()).to_table()
        assert (table["queue_delay"].values >= 0).all()

    def test_runtime_preserved(self, cluster):
        table = ClusterSimulator(cluster, seed=1).run(workload()).to_table()
        assert (abs(table["runtime"].values - 30.0) < 1e-9).all()

    def test_deterministic_given_seed(self, cluster):
        a = ClusterSimulator(cluster, seed=9).run(workload()).to_table()
        b = ClusterSimulator(cluster, seed=9).run(workload()).to_table()
        assert a.to_dict() == b.to_dict()

    def test_different_seed_changes_telemetry(self, cluster):
        a = ClusterSimulator(cluster, seed=1).run(workload()).to_table()
        b = ClusterSimulator(cluster, seed=2).run(workload()).to_table()
        assert a["gpu_power"].to_list() != b["gpu_power"].to_list()

    def test_contended_cluster_produces_queueing(self):
        tiny = ClusterSpec.of((NodeSpec("n", "V100", 1, 8, 64), 1))
        jobs = [
            JobRequest(job_id=i, user="u", submit_time=0.0, runtime=10.0,
                       n_gpus=1, n_cpus=1, mem_gb=1.0, gpu_type="V100")
            for i in range(5)
        ]
        result = ClusterSimulator(tiny, seed=1).run(jobs)
        delays = sorted(r.queue_delay for r in result.records)
        assert delays == [0.0, 10.0, 20.0, 30.0, 40.0]
