"""Unit + property tests for rule metrics (Eqs. 1–4)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import compute_metrics, confidence, conviction, leverage, lift


class TestConfidence:
    def test_definition(self):
        assert confidence(0.1, 0.2) == pytest.approx(0.5)

    def test_zero_antecedent(self):
        assert confidence(0.0, 0.0) == 0.0

    def test_paper_example(self):
        # "a rule with support 0.1, confidence 0.8" → supp(X) = 0.125
        assert confidence(0.1, 0.125) == pytest.approx(0.8)


class TestLift:
    def test_independence_is_one(self):
        assert lift(0.06, 0.2, 0.3) == pytest.approx(1.0)

    def test_paper_example(self):
        # supp 0.1, conf 0.8, lift 2 → supp(Y) = 0.4
        assert lift(0.1, 0.125, 0.4) == pytest.approx(2.0)

    def test_symmetry(self):
        assert lift(0.05, 0.1, 0.5) == pytest.approx(lift(0.05, 0.5, 0.1))

    def test_zero_sides(self):
        assert lift(0.0, 0.0, 0.5) == 0.0


class TestLeverage:
    def test_zero_under_independence(self):
        assert leverage(0.06, 0.2, 0.3) == pytest.approx(0.0)

    def test_positive_dependence(self):
        assert leverage(0.1, 0.2, 0.3) == pytest.approx(0.04)


class TestConviction:
    def test_perfect_implication_infinite(self):
        assert conviction(0.2, 0.2, 0.5) == math.inf

    def test_independence_is_one(self):
        assert conviction(0.06, 0.2, 0.3) == pytest.approx(1.0)


class TestComputeMetrics:
    def test_bundle_consistency(self):
        m = compute_metrics(0.1, 0.125, 0.4)
        assert m.support == 0.1
        assert m.confidence == pytest.approx(0.8)
        assert m.lift == pytest.approx(2.0)

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            compute_metrics(1.5, 0.5, 0.5)
        with pytest.raises(ValueError):
            compute_metrics(0.5, -0.1, 0.5)


# -- properties over consistent support triples ----------------------------------

@st.composite
def support_triple(draw):
    """(supp_xy, supp_x, supp_y) consistent with a real database."""
    supp_x = draw(st.floats(min_value=0.01, max_value=1.0))
    supp_y = draw(st.floats(min_value=0.01, max_value=1.0))
    upper = min(supp_x, supp_y)
    lower = max(0.0, supp_x + supp_y - 1.0)  # inclusion–exclusion floor
    lower = min(lower, upper)  # guard float rounding at the boundary
    supp_xy = draw(st.floats(min_value=lower, max_value=upper))
    return supp_xy, supp_x, supp_y


@given(t=support_triple())
@settings(max_examples=200, deadline=None)
def test_metric_identities(t):
    supp_xy, supp_x, supp_y = t
    m = compute_metrics(supp_xy, supp_x, supp_y)
    # conf = supp_xy / supp_x
    assert m.confidence == pytest.approx(supp_xy / supp_x)
    # lift = conf / supp_y (Eq. 4's first form)
    assert m.lift == pytest.approx(m.confidence / supp_y, rel=1e-9)
    # confidence bounded
    assert 0.0 <= m.confidence <= 1.0 + 1e-9
    # leverage sign agrees with lift vs 1
    if m.lift > 1.0 + 1e-9:
        assert m.leverage > -1e-12
    if m.lift < 1.0 - 1e-9:
        assert m.leverage < 1e-12


@given(t=support_triple())
@settings(max_examples=200, deadline=None)
def test_lift_symmetry_property(t):
    supp_xy, supp_x, supp_y = t
    assert lift(supp_xy, supp_x, supp_y) == pytest.approx(
        lift(supp_xy, supp_y, supp_x)
    )
