"""Subprocess body for the spawn-start-method mining equality test.

Run as a real script (never via stdin): the spawn start method re-imports
``__main__`` from its file path, so the entry point must live on disk and
sit behind a ``__main__`` guard.  Prints ``SPAWN_MINING_OK`` when the
process backend parallelised under spawn and matched the serial oracle.
"""

import multiprocessing


def main() -> None:
    from repro.core import MiningConfig
    from repro.engine import ProcessBackend, SerialBackend
    from repro.traces.synthetic.pai import (
        PAIConfig,
        generate_pai,
        pai_preprocessor,
    )

    db = pai_preprocessor().run(generate_pai(PAIConfig(n_jobs=2000))).database
    config = MiningConfig()
    resolved = ProcessBackend(n_workers=2, n_partitions=4).resolve(db)
    got = resolved.mine(db, config)
    expected = SerialBackend().resolve(db).mine(db, config)
    assert resolved.effective_plan == "process:shm-spawn", resolved.effective_plan
    assert not resolved.downgraded
    assert dict(got.counts) == dict(expected.counts)
    print(f"SPAWN_MINING_OK plan={resolved.effective_plan}", flush=True)


if __name__ == "__main__":
    multiprocessing.set_start_method("spawn", force=True)
    main()
