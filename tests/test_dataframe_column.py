"""Unit tests for the typed column substrate."""

import math

import numpy as np
import pytest

from repro.dataframe import (
    BooleanColumn,
    CategoricalColumn,
    NumericColumn,
    column_from_values,
)


class TestNumericColumn:
    def test_basic_construction_and_length(self):
        col = NumericColumn([1.0, 2.5, 3.0])
        assert len(col) == 3
        assert col.to_list() == [1.0, 2.5, 3.0]

    def test_nan_is_missing(self):
        col = NumericColumn([1.0, math.nan, 3.0])
        assert col.to_list() == [1.0, None, 3.0]
        assert col.isna().tolist() == [False, True, False]

    def test_rejects_2d_input(self):
        with pytest.raises(ValueError):
            NumericColumn(np.zeros((2, 2)))

    def test_take_gathers_rows(self):
        col = NumericColumn([10.0, 20.0, 30.0])
        assert col.take(np.asarray([2, 0])).to_list() == [30.0, 10.0]

    def test_mask_filters_rows(self):
        col = NumericColumn([1.0, 2.0, 3.0])
        assert col.mask(np.asarray([True, False, True])).to_list() == [1.0, 3.0]

    def test_mask_length_mismatch_raises(self):
        with pytest.raises(ValueError):
            NumericColumn([1.0]).mask(np.asarray([True, False]))

    def test_equals_scalar_nan_never_matches(self):
        col = NumericColumn([1.0, math.nan, 1.0])
        assert col.equals_scalar(1.0).tolist() == [True, False, True]
        assert col.equals_scalar(float("nan")).tolist() == [False, False, False]

    def test_reductions_ignore_nan(self):
        col = NumericColumn([1.0, math.nan, 3.0])
        assert col.min() == 1.0
        assert col.max() == 3.0
        assert col.mean() == 2.0
        assert col.sum() == 4.0

    def test_quantile(self):
        col = NumericColumn(np.arange(101, dtype=float))
        assert col.quantile(0.5) == 50.0


class TestCategoricalColumn:
    def test_from_values_interns_in_order(self):
        col = CategoricalColumn.from_values(["b", "a", "b", None])
        assert col.categories == ["b", "a"]
        assert col.to_list() == ["b", "a", "b", None]

    def test_codes_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            CategoricalColumn(np.asarray([0, 5], dtype=np.int32), ["x"])

    def test_duplicate_categories_rejected(self):
        with pytest.raises(ValueError):
            CategoricalColumn(np.asarray([0], dtype=np.int32), ["x", "x"])

    def test_equals_scalar(self):
        col = CategoricalColumn.from_values(["a", "b", "a"])
        assert col.equals_scalar("a").tolist() == [True, False, True]
        assert col.equals_scalar("zzz").tolist() == [False, False, False]
        assert col.equals_scalar(None).tolist() == [False, False, False]

    def test_value_counts_sorted_desc(self):
        col = CategoricalColumn.from_values(["a", "b", "b", "b", "a", None])
        assert col.value_counts() == {"b": 3, "a": 2}

    def test_map_categories_merges_labels(self):
        col = CategoricalColumn.from_values(["resnet", "vgg", "bert", None])
        mapped = col.map_categories({"resnet": "CV", "vgg": "CV", "bert": "NLP"})
        assert mapped.to_list() == ["CV", "CV", "NLP", None]
        assert mapped.categories == ["CV", "NLP"]

    def test_map_categories_identity_for_unmapped(self):
        col = CategoricalColumn.from_values(["x", "y"])
        mapped = col.map_categories({"x": "z"})
        assert mapped.to_list() == ["z", "y"]

    def test_take_preserves_categories(self):
        col = CategoricalColumn.from_values(["a", "b", "c"])
        sub = col.take(np.asarray([1]))
        assert sub.to_list() == ["b"]
        assert sub.categories == ["a", "b", "c"]

    def test_missing_strings_treated_as_na(self):
        col = CategoricalColumn.from_values(["a", "", "nan", "NaN", "null"])
        assert col.to_list() == ["a", None, None, None, None]

    def test_none_string_is_a_real_category(self):
        # "GPU Type = None" is a legitimate trace value, not a missing cell
        col = CategoricalColumn.from_values(["None", "T4"])
        assert col.to_list() == ["None", "T4"]


class TestBooleanColumn:
    def test_roundtrip(self):
        col = BooleanColumn([True, False, True])
        assert col.to_list() == [True, False, True]
        assert not col.isna().any()

    def test_equals_scalar(self):
        col = BooleanColumn([True, False])
        assert col.equals_scalar(True).tolist() == [True, False]


class TestColumnFromValues:
    def test_all_bools_gives_boolean(self):
        assert isinstance(column_from_values([True, False]), BooleanColumn)

    def test_bools_with_missing_promote_to_numeric(self):
        col = column_from_values([True, None, False])
        assert isinstance(col, NumericColumn)
        assert col.to_list() == [1.0, None, 0.0]

    def test_numeric_strings_parse(self):
        col = column_from_values(["1.5", "2", None])
        assert isinstance(col, NumericColumn)
        assert col.to_list() == [1.5, 2.0, None]

    def test_mixed_strings_become_categorical(self):
        col = column_from_values(["1.5", "abc"])
        assert isinstance(col, CategoricalColumn)

    def test_true_false_strings_parse_as_boolean(self):
        col = column_from_values(["true", "False", "TRUE"])
        assert isinstance(col, BooleanColumn)
        assert col.to_list() == [True, False, True]

    def test_true_false_with_missing_promote_to_numeric(self):
        col = column_from_values(["true", None, "false"])
        assert isinstance(col, NumericColumn)
        assert col.to_list() == [1.0, None, 0.0]

    def test_all_missing_becomes_categorical_of_nothing(self):
        col = column_from_values([None, None])
        assert col.to_list() == [None, None]
