"""Unit tests for items and vocabularies."""

import pytest

from repro.core import Item, ItemVocabulary, render_itemset


class TestItem:
    def test_str_form(self):
        assert str(Item("SM Util", "0%")) == "SM Util = 0%"

    def test_flag_renders_bare(self):
        flag = Item.flag("Multi-GPU")
        assert flag.is_flag
        assert flag.render() == "Multi-GPU"

    def test_parse_pair(self):
        item = Item.parse("GPU Type = None")
        assert item == Item("GPU Type", "None")
        assert not item.is_flag

    def test_parse_flag(self):
        assert Item.parse("Failed") == Item.flag("Failed")

    def test_parse_roundtrip(self):
        item = Item("Queue", "Bin4")
        assert Item.parse(str(item)) == item

    def test_ordering_feature_then_value(self):
        assert Item("A", "x") < Item("A", "y") < Item("B", "a")

    def test_hashable_in_frozensets(self):
        s = frozenset([Item("a", "1"), Item("a", "1"), Item("b", "2")])
        assert len(s) == 2


class TestItemVocabulary:
    def test_intern_assigns_stable_ids(self):
        vocab = ItemVocabulary()
        i1 = vocab.intern(Item("a", "1"))
        i2 = vocab.intern("b = 2")
        assert vocab.intern(Item("a", "1")) == i1
        assert i2 == i1 + 1
        assert len(vocab) == 2

    def test_id_of_missing_raises(self):
        with pytest.raises(KeyError, match="not in the vocabulary"):
            ItemVocabulary().id_of("ghost")

    def test_get_id_missing_returns_none(self):
        assert ItemVocabulary().get_id("ghost") is None

    def test_item_of_roundtrip(self):
        vocab = ItemVocabulary(["x = 1", "Failed"])
        assert vocab.item_of(0) == Item("x", "1")
        assert vocab.item_of(1) == Item.flag("Failed")

    def test_encode_and_items_of(self):
        vocab = ItemVocabulary()
        ids = vocab.encode(["a = 1", "b = 2"])
        assert vocab.items_of(ids) == frozenset({Item("a", "1"), Item("b", "2")})

    def test_contains(self):
        vocab = ItemVocabulary(["Failed"])
        assert "Failed" in vocab
        assert "Ghost" not in vocab

    def test_iteration_in_id_order(self):
        vocab = ItemVocabulary(["b = 2", "a = 1"])
        assert list(vocab) == [Item("b", "2"), Item("a", "1")]


class TestRenderItemset:
    def test_sorted_braced(self):
        text = render_itemset([Item.flag("Failed"), Item("CPU Util", "Bin1")])
        assert text == "{CPU Util = Bin1, Failed}"
