"""Tests for the unified mining engine: backends, cache, instrumentation."""

import pytest

from repro.core import MiningConfig, TransactionDatabase, fpgrowth
from repro.engine import (
    AUTO_THREADED_THRESHOLD,
    BACKENDS,
    AutoBackend,
    EngineStats,
    ItemsetCache,
    MiningEngine,
    ProcessBackend,
    SerialBackend,
    StageStats,
    ThreadedBackend,
    default_engine,
    get_backend,
    register_backend,
)
from repro.traces import get_trace


# -- backend equivalence matrix --------------------------------------------------

BACKEND_NAMES = ["serial", "threaded", "process"]
ALGORITHM_NAMES = ["fpgrowth", "apriori", "eclat"]


class TestBackendMatrix:
    @pytest.fixture(scope="class")
    def trace_dbs(self, supercloud_db, philly_db):
        return {"supercloud": supercloud_db, "philly": philly_db}

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    @pytest.mark.parametrize("algorithm", ALGORITHM_NAMES)
    def test_equivalence_matrix(self, trace_dbs, backend, algorithm):
        """serial/threaded/process × fpgrowth/apriori/eclat are bit-exact."""
        config = MiningConfig(min_support=0.05, max_len=3, algorithm=algorithm)
        for name, db in trace_dbs.items():
            reference = fpgrowth(db, 0.05, 3)
            engine = MiningEngine(
                backend=backend, n_workers=2, n_partitions=3, cache=False
            )
            mined = engine.mine(db, config)
            assert mined.counts == reference, f"{backend}/{algorithm} on {name}"
            assert len(mined) > 0

    @pytest.mark.parametrize("backend", BACKEND_NAMES)
    def test_empty_database(self, backend):
        db = TransactionDatabase.from_itemsets([])
        engine = MiningEngine(backend=backend, cache=False)
        assert len(engine.mine(db, MiningConfig())) == 0

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            get_backend("quantum")

    def test_invalid_worker_counts(self):
        with pytest.raises(ValueError):
            ThreadedBackend(n_workers=0)
        with pytest.raises(ValueError):
            ProcessBackend(n_partitions=0)

    def test_registry_mirrors_protocol(self):
        for name in ("serial", "threaded", "process", "auto"):
            assert name in BACKENDS
            backend = get_backend(name, n_workers=2)
            assert backend.name == name
            assert hasattr(backend, "mine") and hasattr(backend, "resolve")

    def test_register_backend_rejects_duplicates(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("serial", lambda **kw: SerialBackend())


class TestAutoSelection:
    def test_small_db_resolves_serial(self, toy_db):
        assert isinstance(AutoBackend().resolve(toy_db), SerialBackend)

    def test_thresholds_order(self):
        auto = AutoBackend(n_workers=2)

        class FakeDB:
            def __init__(self, n):
                self._n = n

            def __len__(self):
                return self._n

        assert isinstance(auto.resolve(FakeDB(10)), SerialBackend)
        assert isinstance(
            auto.resolve(FakeDB(AUTO_THREADED_THRESHOLD + 1)), ThreadedBackend
        )
        assert isinstance(auto.resolve(FakeDB(10**7)), ProcessBackend)

    def test_auto_mines_correctly(self, toy_db):
        engine = MiningEngine(backend="auto", cache=False)
        assert engine.mine(toy_db, MiningConfig(min_support=0.4)).counts == fpgrowth(
            toy_db, 0.4
        )


# -- itemset cache ---------------------------------------------------------------


class TestItemsetCache:
    def test_hit_after_miss(self, toy_db):
        engine = MiningEngine(backend="serial")
        config = MiningConfig(min_support=0.4)
        first, status1 = engine.mine_with_status(toy_db, config)
        second, status2 = engine.mine_with_status(toy_db, config)
        assert (status1, status2) == ("miss", "hit")
        assert second is first
        stats = engine.cache_stats()
        assert stats.hits == 1 and stats.misses == 1

    def test_content_addressed_across_instances(self, toy_db):
        """A rebuilt database with identical content hits the cache."""
        engine = MiningEngine(backend="serial")
        clone = TransactionDatabase.from_itemsets(
            [
                [str(toy_db.vocabulary.item_of(i)) for i in ids]
                for ids in toy_db.iter_id_transactions()
            ]
        )
        assert clone.fingerprint() == toy_db.fingerprint()
        engine.mine(toy_db, MiningConfig(min_support=0.4))
        _, status = engine.mine_with_status(clone, MiningConfig(min_support=0.4))
        assert status == "hit"

    def test_config_projection(self, toy_db):
        """Rule-level knobs share one itemset entry; mining knobs do not."""
        engine = MiningEngine(backend="serial")
        engine.mine(toy_db, MiningConfig(min_support=0.4, min_lift=1.5))
        _, status = engine.mine_with_status(
            toy_db, MiningConfig(min_support=0.4, min_lift=3.0)
        )
        assert status == "hit"
        _, status = engine.mine_with_status(toy_db, MiningConfig(min_support=0.6))
        assert status == "miss"

    def test_disabled_cache(self, toy_db):
        engine = MiningEngine(backend="serial", cache=False)
        _, status = engine.mine_with_status(toy_db, MiningConfig(min_support=0.4))
        assert status == "off"
        assert engine.cache_stats() is None

    def test_lru_eviction(self):
        cache = ItemsetCache(max_entries=2)
        engine = MiningEngine(backend="serial", cache=cache)
        dbs = [
            TransactionDatabase.from_itemsets([[f"x{i}", "y"], ["y"]])
            for i in range(3)
        ]
        for db in dbs:
            engine.mine(db, MiningConfig(min_support=0.5))
        assert len(cache) == 2
        assert cache.stats().evictions == 1
        # the first db was evicted: mining it again is a miss
        _, status = engine.mine_with_status(dbs[0], MiningConfig(min_support=0.5))
        assert status == "miss"

    def test_shared_cache_between_engines(self, toy_db):
        cache = ItemsetCache()
        a = MiningEngine(backend="serial", cache=cache)
        b = MiningEngine(backend="process", n_workers=1, cache=cache)
        a.mine(toy_db, MiningConfig(min_support=0.4))
        _, status = b.mine_with_status(toy_db, MiningConfig(min_support=0.4))
        assert status == "hit"

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            ItemsetCache(max_entries=0)


# -- staged pipeline + instrumentation -------------------------------------------


class TestAnalyzePipeline:
    @pytest.fixture()
    def definition(self):
        return get_trace("supercloud")

    def test_stats_schema(self, supercloud_table, definition):
        engine = MiningEngine(backend="serial")
        result = engine.analyze(
            definition.make_preprocessor(),
            supercloud_table,
            {"failure": "Failed"},
            MiningConfig(),
        )
        stats = result.stats
        assert isinstance(stats, EngineStats)
        assert [s.name for s in stats.stages] == [
            "preprocess",
            "mine",
            "generate-rules",
            "prune",
        ]
        d = stats.as_dict()
        assert d["backend"] == "serial"
        assert {"name", "seconds", "n_in", "n_out", "cache", "kernels"} == set(
            d["stages"][0]
        )
        assert stats.stage("mine").n_in == len(supercloud_table)
        assert stats.stage("mine").n_out == len(result.itemsets)
        assert stats.stage("prune").n_out == sum(
            len(r) for r in result.keyword_results.values()
        )
        assert "backend=serial" in stats.render()

    def test_second_study_hits_cache(self, supercloud_table, definition):
        """Acceptance: a second keyword study re-mines nothing."""
        engine = MiningEngine(backend="serial")
        pre = definition.make_preprocessor()
        first = engine.analyze(
            pre, supercloud_table, {"underutilization": "SM Util = 0%"}, MiningConfig()
        )
        assert first.stats.stage("mine").cache == "miss"
        second = engine.analyze(
            pre, supercloud_table, {"failure": "Failed"}, MiningConfig()
        )
        assert second.stats.stage("mine").cache == "hit"
        assert second.stats.cache_hits >= 1
        assert second.itemsets is first.itemsets  # no second mining pass
        assert len(second["failure"]) > 0

    def test_unknown_keyword_empty(self, supercloud_table, definition):
        engine = MiningEngine(backend="serial")
        result = engine.analyze(
            definition.make_preprocessor(),
            supercloud_table,
            {"ghost": "No Such Item"},
            MiningConfig(),
        )
        assert len(result["ghost"]) == 0
        assert result.stats.stage("generate-rules").n_out == 0

    def test_workflow_delegates_to_engine(self, supercloud_table, definition):
        from repro.analysis import InterpretableAnalysis

        engine = MiningEngine(backend="serial")
        workflow = InterpretableAnalysis(
            definition.make_preprocessor(), MiningConfig(), engine
        )
        result = workflow.run(supercloud_table, {"failure": "Failed"})
        assert result.stats is not None
        assert result.stats.backend == "serial"

    def test_keyword_rules_matches_core(self, toy_db):
        from repro.core import mine_keyword_rules

        engine = MiningEngine(backend="serial")
        config = MiningConfig(min_support=0.4, min_lift=1.0)
        a = engine.keyword_rules(toy_db, "beer", config)
        b = mine_keyword_rules(toy_db, "beer", config)
        assert [str(r) for r in a.all_rules] == [str(r) for r in b.all_rules]


class TestStageStats:
    def test_invalid_cache_state_rejected(self):
        with pytest.raises(ValueError, match="cache must be one of"):
            StageStats("mine", 0.0, 1, 1, cache="maybe")

    def test_engine_stats_counters(self):
        stats = EngineStats(backend="serial")
        stats.add(StageStats("mine", 0.1, 10, 5, cache="hit"))
        stats.add(StageStats("prune", 0.2, 5, 2))
        assert stats.cache_hits == 1 and stats.cache_misses == 0
        assert stats.total_seconds == pytest.approx(0.3)
        with pytest.raises(KeyError):
            stats.stage("nope")


class TestDefaultEngine:
    def test_singleton(self):
        assert default_engine() is default_engine()

    def test_one_call_helpers_share_cache(self, toy_db):
        """mine_frequent_itemsets routes through the shared engine."""
        from repro.core import mine_frequent_itemsets
        from repro.engine import set_default_engine

        previous = set_default_engine(MiningEngine(backend="serial"))
        try:
            config = MiningConfig(min_support=0.4)
            first = mine_frequent_itemsets(toy_db, config)
            second = mine_frequent_itemsets(toy_db, config)
            assert second is first  # cache answered, no re-mining
            stats = default_engine().cache_stats()
            assert stats.hits >= 1
        finally:
            set_default_engine(previous)
