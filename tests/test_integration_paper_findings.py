"""End-to-end integration: the workflow must recover the paper's findings.

Each test mines a synthetic trace with the paper's exact parameters
(min-support 5 %, max length 5, min-lift 1.5, C_lift = C_supp = 1.5) and
asserts that the *shape* of the corresponding table survives: the planted
antecedent→consequent families exist among the kept rules with lift above
the paper's floor.  Exact metric values are not asserted — the substrate
is a simulator, not the production clusters.
"""

import pytest

from repro.core import Item, MiningConfig, mine_keyword_rules, mine_frequent_itemsets


def rules_with(rules, antecedent_parts=(), consequent_parts=()):
    """Rules whose sides contain all the given item texts."""
    out = []
    for rule in rules:
        ant = {i.render() for i in rule.antecedent}
        cons = {i.render() for i in rule.consequent}
        if set(antecedent_parts) <= ant and set(consequent_parts) <= cons:
            out.append(rule)
    return out


@pytest.fixture(scope="module")
def pai_rules(pai_db):
    cfg = MiningConfig()
    fis = mine_frequent_itemsets(pai_db, cfg)
    return {
        "underutil": mine_keyword_rules(pai_db, "SM Util = 0%", cfg, itemsets=fis),
        "failure": mine_keyword_rules(pai_db, "Failed", cfg, itemsets=fis),
    }


@pytest.fixture(scope="module")
def sc_rules(supercloud_db):
    cfg = MiningConfig()
    fis = mine_frequent_itemsets(supercloud_db, cfg)
    return {
        "underutil": mine_keyword_rules(supercloud_db, "SM Util = 0%", cfg, itemsets=fis),
        "failure": mine_keyword_rules(supercloud_db, "Failed", cfg, itemsets=fis),
        "killed": mine_keyword_rules(supercloud_db, "Job Killed", cfg, itemsets=fis),
    }


@pytest.fixture(scope="module")
def philly_rules(philly_db):
    cfg = MiningConfig()
    fis = mine_frequent_itemsets(philly_db, cfg)
    return {
        "underutil": mine_keyword_rules(philly_db, "SM Util = 0%", cfg, itemsets=fis),
        "failure": mine_keyword_rules(philly_db, "Failed", cfg, itemsets=fis),
        "multi": mine_keyword_rules(philly_db, "Multi-GPU", cfg, itemsets=fis),
    }


class TestTable2PaiUnderutilization:
    def test_low_memory_signals_idle_gpu(self, pai_rules):
        # C2: Memory Used = Bin1 ⇒ SM Util = 0%
        hits = rules_with(
            pai_rules["underutil"].cause,
            antecedent_parts=["Memory Used = Bin1"],
        )
        assert hits
        assert max(r.confidence for r in hits) > 0.6

    def test_low_cpu_and_short_runtime_signal(self, pai_rules):
        # C4 family: CPU Util = Bin1 (+ Runtime = Bin1) ⇒ SM Util = 0%
        hits = rules_with(
            pai_rules["underutil"].all_rules,
            antecedent_parts=["CPU Util = Bin1"],
        )
        assert hits

    def test_characteristics_include_low_customisation(self, pai_rules):
        # A1/A2: idle jobs ⇒ {Tensorflow, GPU Type = None, Std requests}
        char = pai_rules["underutil"].characteristic
        tf = rules_with(char, consequent_parts=["Tensorflow"])
        assert tf, "Tensorflow must appear as an idle-job characteristic"
        none_type = rules_with(char, consequent_parts=["GPU Type = None"])
        assert none_type

    def test_all_rules_clear_paper_thresholds(self, pai_rules):
        for rule in pai_rules["underutil"].all_rules:
            assert rule.support >= 0.05 - 1e-9
            assert rule.lift >= 1.5
            assert rule.length <= 5


class TestTable5PaiFailure:
    def test_bulk_user_group_failures(self, pai_rules):
        # C1/C3 family: {CPU Request = Bin1, Freq Group} ⇒ Failed
        hits = rules_with(
            pai_rules["failure"].cause,
            antecedent_parts=["Freq Group"],
            consequent_parts=["Failed"],
        )
        assert hits
        assert max(r.confidence for r in hits) > 0.7  # paper: 0.91–0.95

    def test_zero_gmem_predicts_failure(self, pai_rules):
        # C4 family: GMem Used = 0GB ⇒ Failed
        hits = rules_with(
            pai_rules["failure"].all_rules,
            antecedent_parts=["GMem Used = 0GB"],
        )
        assert hits

    def test_failed_jobs_share_underutilization_traits(self, pai_rules):
        # A2: Failed ⇒ {…, SM Util = 0%}: the failure/underutilisation link
        hits = rules_with(
            pai_rules["failure"].characteristic,
            antecedent_parts=["Failed"],
            consequent_parts=["SM Util = 0%"],
        )
        assert hits


class TestTable3SuperCloudUnderutilization:
    def test_low_gmem_and_variance_cause_rules(self, sc_rules):
        hits = rules_with(
            sc_rules["underutil"].cause,
            antecedent_parts=["GMem Util = Bin1"],
        )
        assert hits
        assert max(r.confidence for r in hits) > 0.5

    def test_low_power_signal(self, sc_rules):
        # C2/C3: GPU Power = Bin1 appears among idle-GPU antecedents
        hits = rules_with(
            sc_rules["underutil"].all_rules,
            antecedent_parts=["GPU Power = Bin1"],
        )
        assert hits

    def test_idle_jobs_have_low_memory_profile(self, sc_rules):
        # A1: SM Util = 0% ⇒ GMem {Util, Used} = Bin1 …
        hits = rules_with(
            sc_rules["underutil"].characteristic,
            antecedent_parts=["SM Util = 0%"],
            consequent_parts=["GMem Util = Bin1"],
        )
        assert hits
        assert max(r.lift for r in hits) > 3.0  # paper: 4.3–10.6


class TestTable6SuperCloudFailure:
    def test_low_gmem_util_failure_lift(self, sc_rules):
        # C1: GMem Util = Bin1 ⇒ Failed (low conf, lift ≈ 2)
        hits = rules_with(
            sc_rules["failure"].cause,
            antecedent_parts=["GMem Util = Bin1"],
            consequent_parts=["Failed"],
        )
        assert hits
        best = max(hits, key=lambda r: r.lift)
        assert best.confidence < 0.6  # weak predictor, like the paper
        assert best.lift > 1.5

    def test_long_runtime_failures_exist(self, sc_rules):
        # A2: Failed ⇒ Runtime = Bin4 (late failures waste compute)
        hits = rules_with(
            sc_rules["failure"].characteristic,
            antecedent_parts=["Failed"],
            consequent_parts=["Runtime = Bin4"],
        )
        assert hits


class TestCir1SuperCloudKills:
    def test_new_users_kill_jobs(self, sc_rules):
        hits = rules_with(
            sc_rules["killed"].cause,
            antecedent_parts=["New User"],
            consequent_parts=["Job Killed"],
        )
        assert hits
        best = max(hits, key=lambda r: r.lift)
        assert best.lift > 1.5  # paper: 1.75


class TestTable4PhillyUnderutilization:
    def test_low_cpu_cause(self, philly_rules):
        # C2: CPU Util = Bin1 ⇒ SM Util = 0%
        hits = rules_with(
            philly_rules["underutil"].cause,
            antecedent_parts=["CPU Util = Bin1"],
            consequent_parts=["SM Util = 0%"],
        )
        assert hits
        assert max(r.confidence for r in hits) > 0.6  # paper: 0.69

    def test_min_sm_util_feature_used(self, philly_rules):
        # C1/A1 use the 1-minute-granularity min-SM feature
        hits = rules_with(
            philly_rules["underutil"].all_rules,
            antecedent_parts=["Min SM Util = 0%"],
        ) or rules_with(
            philly_rules["underutil"].all_rules,
            consequent_parts=["Min SM Util = 0%"],
        )
        assert hits


class TestTable7PhillyFailure:
    def test_multi_gpu_failure(self, philly_rules):
        # C1: Multi-GPU ⇒ Failed, lift ≈ 2.55
        hits = rules_with(
            philly_rules["failure"].cause,
            antecedent_parts=["Multi-GPU"],
            consequent_parts=["Failed"],
        )
        assert hits
        assert max(r.lift for r in hits) > 1.5

    def test_new_user_failure(self, philly_rules):
        # C2: New User ⇒ Failed, lift ≈ 2.46
        hits = rules_with(
            philly_rules["failure"].cause,
            antecedent_parts=["New User"],
            consequent_parts=["Failed"],
        )
        assert hits

    def test_retry_characteristic(self, philly_rules):
        # A1: {Min SM Util = 0%, Failed} ⇒ Num Attempts > 1
        hits = rules_with(
            philly_rules["failure"].characteristic,
            antecedent_parts=["Failed"],
            consequent_parts=["Num Attempts > 1"],
        )
        assert hits


class TestPhi1PhillyMultiGpu:
    def test_multi_gpu_long_runtime(self, philly_rules):
        # PHI1: Multi-GPU ⇒ Runtime = Bin4
        hits = rules_with(
            philly_rules["multi"].characteristic,
            antecedent_parts=["Multi-GPU"],
            consequent_parts=["Runtime = Bin4"],
        )
        assert hits
        assert max(r.lift for r in hits) > 1.5  # paper: 2.01
