"""Tests for SON phase primitives and the deprecated son_mine shim.

Backend-level equivalence (serial/threaded/process × algorithms) lives in
``test_engine.py``; this file covers the SON phase functions the engine's
partitioned backends execute, plus the one-release deprecation shim.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MiningConfig, TransactionDatabase, fpgrowth
from repro.engine import MiningEngine, ProcessBackend
from repro.parallel import count_candidates, local_candidates, son_mine


def _process_mine(db, min_support, max_len=None, n_partitions=4, n_workers=1,
                  algorithm="fpgrowth"):
    engine = MiningEngine(
        backend="process", n_workers=n_workers, n_partitions=n_partitions,
        cache=False,
    )
    return engine.mine(
        db,
        MiningConfig(min_support=min_support, max_len=max_len, algorithm=algorithm),
    )


class TestSonSerial:
    @pytest.mark.parametrize("n_partitions", [1, 2, 3, 5])
    def test_matches_fpgrowth(self, toy_db, n_partitions):
        son = _process_mine(toy_db, 0.4, n_partitions=n_partitions)
        reference = fpgrowth(toy_db, 0.4)
        assert son.counts == reference

    def test_empty_database(self):
        db = TransactionDatabase.from_itemsets([])
        assert len(_process_mine(db, 0.5)) == 0

    def test_invalid_params(self, toy_db):
        with pytest.raises(ValueError):
            ProcessBackend(n_partitions=0)
        with pytest.raises(ValueError):
            ProcessBackend(n_workers=0)

    @pytest.mark.parametrize("algorithm", ["fpgrowth", "apriori", "eclat"])
    def test_any_local_algorithm(self, toy_db, algorithm):
        son = _process_mine(toy_db, 0.4, n_partitions=2, algorithm=algorithm)
        assert son.counts == fpgrowth(toy_db, 0.4)

    def test_max_len_respected(self, toy_db):
        son = _process_mine(toy_db, 0.2, max_len=2, n_partitions=2)
        assert all(len(s) <= 2 for s in son.counts)


class TestPhases:
    def test_local_candidates_superset_of_global(self, toy_db):
        # pigeonhole: every globally frequent itemset is locally frequent
        # in at least one partition
        global_frequent = set(fpgrowth(toy_db, 0.4))
        union = set()
        for part in toy_db.split(2):
            union |= local_candidates(part, 0.4, None)
        assert global_frequent <= union

    def test_count_candidates_exact(self, toy_db):
        candidates = {frozenset({0}), frozenset({0, 1})}
        counts = count_candidates(toy_db, candidates)
        for itemset, count in counts.items():
            assert count == toy_db.support_count(itemset)

    def test_count_candidates_accepts_precomputed_bitmaps(self, toy_db):
        candidates = {frozenset({0}), frozenset({1, 2})}
        bitmaps = toy_db.bitmaps()
        assert count_candidates(toy_db, candidates, bitmaps=bitmaps) == (
            count_candidates(toy_db, candidates)
        )

    def test_count_candidates_bitmaps_not_rebuilt(self, toy_db, monkeypatch):
        bitmaps = toy_db.bitmaps()
        monkeypatch.setattr(
            type(toy_db), "bitmaps",
            lambda self: (_ for _ in ()).throw(AssertionError("rebuilt bitmaps")),
        )
        counts = count_candidates(toy_db, {frozenset({0})}, bitmaps=bitmaps)
        assert counts[frozenset({0})] == bitmaps.support_count([0])


class TestSonParallel:
    def test_process_pool_matches_serial(self, toy_db):
        serial = _process_mine(toy_db, 0.4, n_partitions=2, n_workers=1)
        parallel = _process_mine(toy_db, 0.4, n_partitions=2, n_workers=2)
        assert serial.counts == parallel.counts

    def test_trace_scale_parallel(self, supercloud_db):
        son = _process_mine(
            supercloud_db, 0.05, max_len=3, n_partitions=4, n_workers=2
        )
        reference = MiningEngine(backend="serial", cache=False).mine(
            supercloud_db, MiningConfig(min_support=0.05, max_len=3)
        )
        assert son.counts == reference.counts


class TestDeprecatedShim:
    def test_son_mine_warns_and_matches(self, toy_db):
        with pytest.deprecated_call():
            son = son_mine(toy_db, 0.4, n_partitions=2)
        assert son.counts == fpgrowth(toy_db, 0.4)

    def test_son_mine_importable_from_top_level(self):
        from repro import son_mine as top_level

        assert top_level is son_mine

    def test_son_mine_invalid_params_still_raise(self, toy_db):
        with pytest.raises(ValueError):
            with pytest.deprecated_call():
                son_mine(toy_db, n_partitions=0)


@st.composite
def random_db(draw):
    n_items = draw(st.integers(2, 6))
    txns = draw(
        st.lists(
            st.lists(st.integers(0, n_items - 1), max_size=n_items),
            min_size=1,
            max_size=40,
        )
    )
    return TransactionDatabase.from_itemsets([[f"i{i}" for i in t] for t in txns])


@given(
    db=random_db(),
    min_support=st.sampled_from([0.1, 0.3, 0.5]),
    n_partitions=st.integers(1, 4),
)
@settings(max_examples=60, deadline=None)
def test_son_equivalence_property(db, min_support, n_partitions):
    son = _process_mine(db, min_support, n_partitions=n_partitions)
    assert son.counts == fpgrowth(db, min_support)


@given(
    db=random_db(),
    min_support=st.sampled_from([0.1, 0.3, 0.5]),
    backend=st.sampled_from(["serial", "threaded", "process"]),
)
@settings(max_examples=40, deadline=None)
def test_engine_backend_equivalence_property(db, min_support, backend):
    """Extension of the SON property test across the engine matrix."""
    engine = MiningEngine(backend=backend, n_workers=2, n_partitions=3, cache=False)
    mined = engine.mine(db, MiningConfig(min_support=min_support, max_len=None))
    assert mined.counts == fpgrowth(db, min_support)
