"""Tests for SON partitioned mining: soundness and completeness."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import MiningConfig, TransactionDatabase, fpgrowth, mine_frequent_itemsets
from repro.parallel import count_candidates, local_candidates, son_mine


class TestSonSerial:
    @pytest.mark.parametrize("n_partitions", [1, 2, 3, 5])
    def test_matches_fpgrowth(self, toy_db, n_partitions):
        son = son_mine(toy_db, min_support=0.4, n_partitions=n_partitions)
        reference = fpgrowth(toy_db, 0.4)
        assert son.counts == reference

    def test_empty_database(self):
        db = TransactionDatabase.from_itemsets([])
        assert len(son_mine(db, 0.5)) == 0

    def test_invalid_params(self, toy_db):
        with pytest.raises(ValueError):
            son_mine(toy_db, n_partitions=0)
        with pytest.raises(ValueError):
            son_mine(toy_db, n_workers=0)

    @pytest.mark.parametrize("algorithm", ["fpgrowth", "apriori", "eclat"])
    def test_any_local_algorithm(self, toy_db, algorithm):
        son = son_mine(toy_db, 0.4, n_partitions=2, algorithm=algorithm)
        assert son.counts == fpgrowth(toy_db, 0.4)

    def test_max_len_respected(self, toy_db):
        son = son_mine(toy_db, 0.2, max_len=2, n_partitions=2)
        assert all(len(s) <= 2 for s in son.counts)


class TestPhases:
    def test_local_candidates_superset_of_global(self, toy_db):
        # pigeonhole: every globally frequent itemset is locally frequent
        # in at least one partition
        global_frequent = set(fpgrowth(toy_db, 0.4))
        union = set()
        for part in toy_db.split(2):
            union |= local_candidates(part, 0.4, None)
        assert global_frequent <= union

    def test_count_candidates_exact(self, toy_db):
        candidates = {frozenset({0}), frozenset({0, 1})}
        counts = count_candidates(toy_db, candidates)
        for itemset, count in counts.items():
            assert count == toy_db.support_count(itemset)


class TestSonParallel:
    def test_process_pool_matches_serial(self, toy_db):
        serial = son_mine(toy_db, 0.4, n_partitions=2, n_workers=1)
        parallel = son_mine(toy_db, 0.4, n_partitions=2, n_workers=2)
        assert serial.counts == parallel.counts

    def test_trace_scale_parallel(self, supercloud_db):
        son = son_mine(supercloud_db, 0.05, max_len=3, n_partitions=4, n_workers=2)
        reference = mine_frequent_itemsets(
            supercloud_db, MiningConfig(min_support=0.05, max_len=3)
        )
        assert son.counts == reference.counts


@st.composite
def random_db(draw):
    n_items = draw(st.integers(2, 6))
    txns = draw(
        st.lists(
            st.lists(st.integers(0, n_items - 1), max_size=n_items),
            min_size=1,
            max_size=40,
        )
    )
    return TransactionDatabase.from_itemsets([[f"i{i}" for i in t] for t in txns])


@given(
    db=random_db(),
    min_support=st.sampled_from([0.1, 0.3, 0.5]),
    n_partitions=st.integers(1, 4),
)
@settings(max_examples=60, deadline=None)
def test_son_equivalence_property(db, min_support, n_partitions):
    son = son_mine(db, min_support, n_partitions=n_partitions)
    assert son.counts == fpgrowth(db, min_support)
