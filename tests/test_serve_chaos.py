"""Fault-injection tests: real worker processes, real signals.

Each scenario runs a genuine multi-process cluster (``repro serve
--shards N`` under the hood) and injects the fault through the
``serve_chaos`` harness while a :class:`~tests.serve_chaos.LoadDriver`
keeps sustained traffic flowing.  The common acceptance shape:

* **liveness** — ``wait_for_progress`` proves clients never hang;
* **zero unrecovered failures** — the router's replica-retry plus the
  client's bounded backoff absorb every injected fault;
* **observability** — healthz/metrics report the degradation honestly.
"""

import asyncio
import signal
import socket

import pytest

from repro.serve import RuleServiceClient
from repro.serve.shard import ShardCluster, broadcast_reload

from .serve_chaos import (
    ChaosCluster,
    LoadDriver,
    abort_mid_batch,
    make_rulebook,
    random_transactions,
    save_rulebook,
)


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def book_path(tmp_path):
    return save_rulebook(make_rulebook(seed=1), tmp_path, "chaos")


class TestKillShard:
    def test_kill_one_of_three_under_load(self, book_path):
        transactions = random_transactions(seed=2, n=64)

        async def scenario():
            async with ChaosCluster(book_path, 3) as chaos:
                async with LoadDriver(
                    chaos.host, chaos.port, transactions
                ) as driver:
                    await driver.wait_for_progress(50, timeout=30)
                    chaos.kill(1)
                    # remaining shards keep serving; nobody hangs
                    await driver.wait_for_progress(100, timeout=30)
                    outcome = await driver.stop()

                # the strong form of graceful degradation: replica
                # retries + client backoff absorbed the replica loss
                assert outcome.failures == [], outcome.failures[:5]
                assert outcome.n_ok >= 150

                async with await RuleServiceClient.connect(
                    chaos.host, chaos.port
                ) as client:
                    health = await client.healthz()
                    assert health["status"] == "degraded"
                    assert health["n_healthy"] == 2
                    down = [
                        s for s in health["shards"] if not s["healthy"]
                    ]
                    assert [s["name"] for s in down] == ["shard1"]
                    # and the survivors still answer matches
                    result = await client.match(transactions[0])
                    assert result["type"] == "match_result"

        run(scenario())


class TestStalledShard:
    def test_stall_routes_around_silent_worker(self, book_path):
        transactions = random_transactions(seed=3, n=64)

        async def scenario():
            # least_loaded: a stalled shard's inflight count climbs, so
            # new traffic steers away; a short request timeout bounds
            # the requests already stuck on it
            async with ChaosCluster(
                book_path, 3, lb_policy="least_loaded", request_timeout_s=1.0
            ) as chaos:
                async with LoadDriver(
                    chaos.host, chaos.port, transactions
                ) as driver:
                    await driver.wait_for_progress(30, timeout=30)
                    chaos.stall(0)
                    await driver.wait_for_progress(100, timeout=45)
                    chaos.resume(0)
                    await driver.wait_for_progress(30, timeout=30)
                    outcome = await driver.stop()

                assert outcome.failures == [], outcome.failures[:5]
                assert outcome.n_ok >= 160

        run(scenario())


class TestClientDisconnect:
    def test_mid_batch_disconnects_leave_other_clients_unharmed(
        self, book_path
    ):
        transactions = random_transactions(seed=4, n=64)

        async def scenario():
            async with ChaosCluster(book_path, 2) as chaos:
                async with LoadDriver(
                    chaos.host, chaos.port, transactions
                ) as driver:
                    await driver.wait_for_progress(20, timeout=30)
                    for _ in range(5):  # rude clients, repeatedly
                        await abort_mid_batch(
                            chaos.host, chaos.port, transactions
                        )
                    await driver.wait_for_progress(60, timeout=30)
                    outcome = await driver.stop()

                assert outcome.failures == [], outcome.failures[:5]

                async with await RuleServiceClient.connect(
                    chaos.host, chaos.port
                ) as client:
                    health = await client.healthz()
                    assert health["status"] == "ok"
                    assert health["n_healthy"] == 2

        run(scenario())


class TestHotSwapUnderLoad:
    def test_flip_rulebook_with_zero_failed_requests(
        self, book_path, tmp_path
    ):
        new_book = make_rulebook(seed=9, n_rules=120)
        new_path = save_rulebook(new_book, tmp_path, "chaos-v2")
        transactions = random_transactions(seed=5, n=64)

        async def scenario():
            async with ChaosCluster(book_path, 2) as chaos:
                async with LoadDriver(
                    chaos.host, chaos.port, transactions
                ) as driver:
                    await driver.wait_for_progress(40, timeout=30)
                    result = await chaos.reload(new_path)
                    assert result["status"] == "ok"
                    assert result["version"] == 2
                    flipped_at = driver.marker()
                    await driver.wait_for_progress(60, timeout=30)
                    outcome = await driver.stop()

                # zero dropped requests across the swap
                assert outcome.failures == [], outcome.failures[:5]
                versions = {
                    r.version for r in outcome.records if r.version
                }
                assert versions == {1, 2}, versions
                # once the rolling reload reports done, every response
                # carries the new version tag — no stragglers
                tail = outcome.versions_after(flipped_at)
                assert tail and set(tail) == {2}

                async with await RuleServiceClient.connect(
                    chaos.host, chaos.port
                ) as client:
                    health = await client.healthz()
                    assert health["version"] == 2
                    assert health["version_tag"] == new_book.fingerprint
                    assert health["n_rules"] == len(new_book)

        run(scenario())


@pytest.mark.skipif(
    not hasattr(socket, "SO_REUSEPORT"),
    reason="SO_REUSEPORT not available on this platform",
)
class TestReusePortMode:
    def test_kernel_balanced_cluster_serves_and_reloads(
        self, book_path, tmp_path
    ):
        new_path = save_rulebook(
            make_rulebook(seed=11, n_rules=100), tmp_path, "reuse-v2"
        )
        transactions = random_transactions(seed=6, n=32)

        async def scenario():
            cluster = ShardCluster(book_path, 2, mode="reuseport")
            await cluster.start()
            try:
                assert len(cluster.control_ports) == 2
                async with await RuleServiceClient.connect(
                    cluster.host, cluster.port
                ) as client:
                    for txn in transactions:
                        result = await client.match(txn)
                        assert result["type"] == "match_result"
                        assert result["version"] == 1

                # rolling reload via the private per-worker control
                # ports (the shared public port cannot address one
                # specific worker — the kernel picks)
                result = await broadcast_reload(
                    cluster.host, cluster.control_ports, new_path
                )
                assert result["status"] == "ok"
                assert result["version"] == 2

                async with await RuleServiceClient.connect(
                    cluster.host, cluster.port
                ) as client:
                    result = await client.match(transactions[0])
                    assert result["version"] == 2
            finally:
                await cluster.shutdown()

        run(scenario())

    def test_workers_drain_on_sigterm(self, book_path):
        async def scenario():
            cluster = ShardCluster(book_path, 2, mode="reuseport")
            await cluster.start()
            try:
                for worker in cluster.workers:
                    worker.send_signal(signal.SIGTERM)
                codes = [await worker.wait(10.0) for worker in cluster.workers]
                assert codes == [0, 0]
            finally:
                await cluster.shutdown()

        run(scenario())
