"""Unit tests for categorical aggregation (tiers, semantic groups)."""

import pytest

from repro.dataframe import CategoricalColumn, ColumnTable
from repro.preprocess import (
    MODEL_FAMILIES,
    apply_semantic_grouping,
    compute_activity_tiers,
    group_rare_categories,
)


@pytest.fixture()
def jobs():
    # user a: 50 jobs, b: 30, c: 15, d: 4, e: 1
    users = ["a"] * 50 + ["b"] * 30 + ["c"] * 15 + ["d"] * 4 + ["e"] * 1
    return ColumnTable.from_dict({"user": users})


class TestActivityTiers:
    def test_frequent_prefix_reaches_top_share(self, jobs):
        tiers = compute_activity_tiers(jobs, "user", top_share=0.25, bottom_share=0.2)
        # user a alone covers 50 % ≥ 25 % → only a is frequent; the rare
        # suffix (e, d, c = 20 %) stops before b
        assert tiers.tier_of("a") == "Freq"
        assert tiers.tier_of("b") == "Moderate"
        assert tiers.tier_of("c") == "Rare"

    def test_rare_suffix_reaches_bottom_share(self, jobs):
        tiers = compute_activity_tiers(jobs, "user", bottom_share=0.05)
        assert tiers.tier_of("e") == "Rare"
        assert tiers.tier_of("d") == "Rare"  # cumulative 5/100 ≥ 5 %

    def test_partition_complete(self, jobs):
        tiers = compute_activity_tiers(jobs, "user")
        assert set(tiers.tiers) == {"a", "b", "c", "d", "e"}
        counts = tiers.counts()
        assert sum(counts.values()) == 5

    def test_unseen_label_counts_as_rare(self, jobs):
        tiers = compute_activity_tiers(jobs, "user")
        assert tiers.tier_of("ghost") == "Rare"
        assert tiers.tier_of(None) is None

    def test_custom_labels(self, jobs):
        tiers = compute_activity_tiers(
            jobs, "user", frequent_label="Freq User", rare_label="New-ish"
        )
        assert tiers.tier_of("a") == "Freq User"

    def test_single_user_is_frequent(self):
        t = ColumnTable.from_dict({"user": ["solo"] * 10})
        tiers = compute_activity_tiers(t, "user")
        assert tiers.tier_of("solo") == "Freq"

    def test_empty_table(self):
        t = ColumnTable.from_dict({"user": []})
        tiers = compute_activity_tiers(t, "user")
        assert tiers.tiers == {}

    def test_invalid_shares(self, jobs):
        with pytest.raises(ValueError):
            compute_activity_tiers(jobs, "user", top_share=0.0)
        with pytest.raises(ValueError):
            compute_activity_tiers(jobs, "user", bottom_share=1.0)


class TestSemanticGrouping:
    def test_paper_families(self):
        col = CategoricalColumn.from_values(
            ["resnet", "bert", "vgg", "xlnet", "custom"]
        )
        out = apply_semantic_grouping(col)
        assert out.to_list() == ["CV", "NLP", "CV", "NLP", "custom"]

    def test_case_insensitive(self):
        col = CategoricalColumn.from_values(["ResNet", "BERT"])
        out = apply_semantic_grouping(col)
        assert out.to_list() == ["CV", "NLP"]

    def test_custom_mapping(self):
        col = CategoricalColumn.from_values(["x", "y"])
        out = apply_semantic_grouping(col, {"x": "G"})
        assert out.to_list() == ["G", "y"]

    def test_known_families_cover_paper_examples(self):
        for name in ("resnet", "vgg", "inception"):
            assert MODEL_FAMILIES[name] == "CV"
        for name in ("bert", "nmt", "xlnet"):
            assert MODEL_FAMILIES[name] == "NLP"


class TestGroupRareCategories:
    def test_folds_below_share(self):
        col = CategoricalColumn.from_values(["a"] * 90 + ["b"] * 6 + ["c"] * 4)
        out = group_rare_categories(col, min_share=0.05, other_label="Other")
        counts = out.value_counts()
        assert counts == {"a": 90, "b": 6, "Other": 4}

    def test_no_fold_when_all_common(self):
        col = CategoricalColumn.from_values(["a", "b"] * 10)
        out = group_rare_categories(col, min_share=0.1)
        assert set(out.categories) == {"a", "b"}

    def test_empty_column(self):
        col = CategoricalColumn.from_values([])
        assert len(group_rare_categories(col, 0.5)) == 0

    def test_invalid_share(self):
        col = CategoricalColumn.from_values(["a"])
        with pytest.raises(ValueError):
            group_rare_categories(col, min_share=1.5)
