"""Shared-memory hot-swap — fleet flip latency and per-shard memory.

Before the shm rule plane, a fleet hot-swap cost every shard the same
work: parse the rulebook JSON, canonical-sort the table, pack the
bitmask matrices, encode the wire fragments.  With the plane, the
cluster parent compiles and publishes *once* and each shard attaches
read-only zero-copy views in milliseconds (DESIGN.md §14).

This benchmark measures both sides of that claim at 1/2/4 shards:

* **per-shard swap latency** — a real worker cluster is started, then
  each worker is told to reload directly (its service port doubles as
  a control port), once shipping a published segment name and once
  shipping only the rulebook path (``REPRO_NO_SHM=1``).  The per-shard
  figure is the mean per-worker flip round trip; the shm mode also
  reports the parent's one-time publish cost honestly.
* **per-shard RSS** — ``VmRSS`` of every worker (after a few matches
  fault in the working set) in both modes.  Attached mask/column pages
  are *shared* — N shards map one copy — while per-worker compilation
  duplicates them into every heap.  Note ``VmRSS`` counts shared
  resident pages too, so at bench-sized books the columns read
  near-equal; the structural N-to-1 win is in *unique* memory (PSS)
  and grows with rulebook size.

Results land in the ``hot_swap`` section of ``BENCH_serve.json``; the
acceptance bar is >= 5x lower per-shard swap latency with shm at 4
shards.  A second measurement mines the PAI database through the
process backend under the **spawn** start method (possible at all only
because workers attach the published database instead of relying on
fork inheritance) and merges a ``process_backend_spawn`` point into
``BENCH_mining.json``.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import multiprocessing
import os
import random
import sys
import tempfile
import time
from pathlib import Path

from repro.core.items import Item, ItemVocabulary
from repro.core.rules import AssociationRule
from repro.serve import RuleBook
from repro.serve.shard import ShardCluster, send_control
from repro.shm import list_segments
from repro.shm.segment import NO_SHM_ENV

REPO_ROOT = Path(__file__).resolve().parents[1]
SERVE_JSON = REPO_ROOT / "BENCH_serve.json"
MINING_JSON = REPO_ROOT / "BENCH_mining.json"

N_RULES = 2000
N_ITEMS = 120


def build_rulebook(rng: random.Random, n_rules: int = N_RULES) -> RuleBook:
    """A mined-shaped book big enough that compilation is visible."""
    vocabulary = ItemVocabulary(
        Item(f"Feature{k % 24}", f"Bin{k // 24}") for k in range(N_ITEMS)
    )
    rules = []
    seen = set()
    while len(rules) < n_rules:
        size = rng.randint(3, 5)
        ids = rng.sample(range(N_ITEMS), size)
        cut = rng.randint(2, size - 1)
        antecedent = frozenset(ids[:cut])
        consequent = frozenset(ids[cut:])
        if (antecedent, consequent) in seen:
            continue
        seen.add((antecedent, consequent))
        rules.append(
            AssociationRule(
                antecedent=vocabulary.items_of(antecedent),
                consequent=vocabulary.items_of(consequent),
                antecedent_ids=antecedent,
                consequent_ids=consequent,
                support=rng.uniform(0.05, 0.5),
                confidence=rng.uniform(0.3, 1.0),
                lift=rng.uniform(1.5, 8.0),
                leverage=rng.uniform(0.0, 0.2),
                conviction=rng.uniform(1.0, 5.0),
            )
        )
    return RuleBook(rules=rules, trace="synthetic-bench")


def vmrss_kb(pid: int) -> int:
    try:
        with open(f"/proc/{pid}/status") as fh:
            for line in fh:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return 0


async def _warm_workers(cluster: ShardCluster, jobs: list[list[str]]) -> None:
    """Fault the match working set into every worker."""
    for worker in cluster.workers:
        for job in jobs:
            await send_control(
                "127.0.0.1",
                worker.port,
                {"type": "match", "transaction": job},
            )


async def _measure_mode(
    *,
    shards: int,
    use_shm: bool,
    book1_path: str,
    book2_path: str,
    jobs: list[list[str]],
) -> dict:
    """One cluster lifetime: start, warm, flip every worker, read RSS."""
    cluster = ShardCluster(book1_path, shards, mode="router")
    await cluster.start()
    lease = None
    try:
        await _warm_workers(cluster, jobs)
        publish_s = None
        payload: dict = {"type": "reload", "rulebook": book2_path, "version": 2}
        if use_shm:
            t0 = time.perf_counter()
            lease = await asyncio.to_thread(cluster._publish_plane, book2_path)
            publish_s = time.perf_counter() - t0
            assert lease is not None, "shm unavailable on this host"
            payload["segment"] = lease.name
        per_worker_s = []
        sources = set()
        for worker in cluster.workers:
            t0 = time.perf_counter()
            result = await send_control("127.0.0.1", worker.port, payload)
            per_worker_s.append(time.perf_counter() - t0)
            assert result.get("type") == "reload_result", result
            sources.add(result.get("source"))
        expected_source = "segment" if use_shm else "path"
        assert sources == {expected_source}, sources
        await _warm_workers(cluster, jobs)
        rss_kb = [vmrss_kb(w.pid) for w in cluster.workers]
        return {
            "shards": shards,
            "publish_s": publish_s,
            "per_shard_swap_s": sum(per_worker_s) / len(per_worker_s),
            "total_swap_s": sum(per_worker_s)
            + (publish_s if publish_s else 0.0),
            "worker_rss_kb_mean": sum(rss_kb) / len(rss_kb),
            "worker_rss_kb": rss_kb,
        }
    finally:
        if lease is not None:
            # the cluster tracks its own initial lease; this one is ours
            await cluster.shutdown()
            lease.unlink()
        else:
            await cluster.shutdown()


async def measure_hot_swap(shard_counts: list[int]) -> list[dict]:
    rng = random.Random(424242)
    book1 = build_rulebook(rng)
    book2 = build_rulebook(rng)
    jobs = [
        rng.sample(
            [str(Item(f"Feature{k % 24}", f"Bin{k // 24}")) for k in range(N_ITEMS)],
            rng.randint(10, 16),
        )
        for _ in range(20)
    ]
    points = []
    with tempfile.TemporaryDirectory(prefix="bench-shm-swap-") as tmp:
        p1 = str(Path(tmp) / "book1.jsonl")
        p2 = str(Path(tmp) / "book2.jsonl")
        book1.save(p1)
        book2.save(p2)
        for shards in shard_counts:
            shm = await _measure_mode(
                shards=shards, use_shm=True,
                book1_path=p1, book2_path=p2, jobs=jobs,
            )
            os.environ[NO_SHM_ENV] = "1"
            try:
                per_worker = await _measure_mode(
                    shards=shards, use_shm=False,
                    book1_path=p1, book2_path=p2, jobs=jobs,
                )
            finally:
                del os.environ[NO_SHM_ENV]
            ratio = per_worker["per_shard_swap_s"] / shm["per_shard_swap_s"]
            point = {
                "shards": shards,
                "shm": shm,
                "per_worker": per_worker,
                "per_shard_latency_ratio": ratio,
            }
            points.append(point)
            print(
                f"shards={shards}: per-shard swap "
                f"{shm['per_shard_swap_s'] * 1e3:.1f}ms (shm, publish "
                f"{shm['publish_s'] * 1e3:.0f}ms once) vs "
                f"{per_worker['per_shard_swap_s'] * 1e3:.1f}ms "
                f"(per-worker compile) — {ratio:.1f}x; RSS "
                f"{shm['worker_rss_kb_mean'] / 1024:.1f}MB vs "
                f"{per_worker['worker_rss_kb_mean'] / 1024:.1f}MB per shard",
                flush=True,
            )
            leaked = list_segments()
            assert not leaked, f"leaked segments: {leaked}"
    return points


def measure_spawn_mining(n_jobs: int) -> dict:
    """Process-backend mining under spawn vs the serial oracle."""
    from repro.core import MiningConfig
    from repro.engine import ProcessBackend, SerialBackend
    from repro.traces.synthetic.pai import (
        PAIConfig,
        generate_pai,
        pai_preprocessor,
    )

    db = pai_preprocessor().run(generate_pai(PAIConfig(n_jobs=n_jobs))).database
    config = MiningConfig()
    t0 = time.perf_counter()
    serial = SerialBackend().resolve(db).mine(db, config)
    serial_s = time.perf_counter() - t0
    resolved = ProcessBackend(n_workers=2, n_partitions=4).resolve(db)
    t0 = time.perf_counter()
    got = resolved.mine(db, config)
    spawn_s = time.perf_counter() - t0
    equal = dict(got.counts) == dict(serial.counts)
    assert equal, "spawn-backend answers diverged from serial"
    point = {
        "trace": "pai",
        "n_jobs": n_jobs,
        "start_method": multiprocessing.get_start_method(),
        "effective_plan": resolved.effective_plan,
        "serial_seconds": serial_s,
        "process_seconds": spawn_s,
        "answers_equal": equal,
        "n_itemsets": len(dict(got.counts)),
    }
    print(
        f"spawn mining: plan={point['effective_plan']} serial "
        f"{serial_s:.2f}s vs process {spawn_s:.2f}s on one box — "
        f"answers equal",
        flush=True,
    )
    return point


def _merge_section(path: Path, key: str, value, *, default_doc: dict) -> None:
    doc = json.loads(path.read_text()) if path.exists() else dict(default_doc)
    doc[key] = value
    path.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="shared-memory hot-swap latency / RSS benchmark"
    )
    parser.add_argument(
        "--shards", type=int, nargs="+", default=[1, 2, 4],
        help="shard counts to sweep",
    )
    parser.add_argument(
        "--spawn-jobs", type=int, default=20_000,
        help="PAI jobs for the spawn-backend mining point (0 skips it)",
    )
    parser.add_argument(
        "--min-ratio", type=float, default=5.0,
        help="required per-shard latency ratio at the highest shard "
             "count (0 waives the floor)",
    )
    args = parser.parse_args(argv)

    points = asyncio.run(measure_hot_swap(args.shards))
    _merge_section(
        SERVE_JSON,
        "hot_swap",
        {
            "description": (
                "fleet hot-swap: per-shard flip latency and worker RSS, "
                "shared-memory rule plane (publish once, attach "
                "everywhere) vs per-worker recompilation"
            ),
            "n_rules": N_RULES,
            "points": points,
        },
        default_doc={"benchmark": "serve_throughput"},
    )
    print(f"wrote hot_swap section ({len(points)} points) to {SERVE_JSON}")

    if args.spawn_jobs:
        spawn_point = measure_spawn_mining(args.spawn_jobs)
        _merge_section(
            MINING_JSON, "process_backend_spawn", spawn_point,
            default_doc={},
        )
        print(f"wrote process_backend_spawn point to {MINING_JSON}")

    top = points[-1]
    if args.min_ratio and top["shards"] >= max(args.shards):
        ratio = top["per_shard_latency_ratio"]
        if ratio < args.min_ratio:
            print(
                f"FAIL: per-shard swap ratio {ratio:.1f}x at "
                f"{top['shards']} shards is below the {args.min_ratio}x bar"
            )
            return 1
        print(
            f"PASS: per-shard swap {ratio:.1f}x faster with shm at "
            f"{top['shards']} shards (bar: {args.min_ratio}x)"
        )
    return 0


if __name__ == "__main__":
    multiprocessing.set_start_method("spawn", force=True)
    sys.exit(main())
