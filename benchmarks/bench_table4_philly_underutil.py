"""Table IV — GPU underutilization rules from the Philly trace.

Paper rows (shape targets):

* C1: min SM util = 0 % within some minute + short runtime ⇒ SM = 0 %;
* C2: low CPU utilisation ⇒ SM = 0 % (conf 0.69, lift 2.19);
* A1: idle jobs on the 24 GB GPU flavour share the min-SM/low-CPU profile.
"""

from __future__ import annotations

from repro.core import mine_keyword_rules

from bench_util import keyword_table_artifact, rules_with


def test_table4_philly_underutilization(
    benchmark, all_results, all_itemsets, paper_config
):
    db = all_results["Philly"].database

    result = benchmark.pedantic(
        lambda: mine_keyword_rules(
            db, "SM Util = 0%", paper_config, itemsets=all_itemsets["Philly"]
        ),
        rounds=3,
        iterations=1,
    )

    keyword_table_artifact(
        result,
        "Table IV — GPU underutilization rules, Philly trace",
        "table4_philly_underutil.txt",
        max_cause=2,
        max_char=1,
    )

    # C2: low CPU utilisation cause rule with high confidence
    c2 = rules_with(
        result.cause,
        antecedent_parts=["CPU Util = Bin1"],
        consequent_parts=["SM Util = 0%"],
    )
    assert c2 and max(r.confidence for r in c2) > 0.6  # paper: 0.69

    # the 1-minute-granularity min-SM feature participates in the analysis
    min_sm = rules_with(
        result.all_rules, antecedent_parts=["Min SM Util = 0%"]
    ) or rules_with(result.all_rules, consequent_parts=["Min SM Util = 0%"])
    assert min_sm
