"""Ablation — number of discretisation bins (Sec. III-E trade-off).

The paper: "choosing the number of bins for discretization comes with
trade-offs.  If the bin size is too small [many bins], the generated
rules would have low support.  If the bin size is too large [few bins],
the rules would have low confidence and lift.  We find the bin size of a
quarter works well."  This bench sweeps the bin count on the SuperCloud
trace and measures exactly those quantities over the underutilisation
rules.
"""

from __future__ import annotations

import numpy as np

from repro.core import MiningConfig, mine_keyword_rules
from repro.preprocess import BinningSpec, FeatureSpec, TracePreprocessor, TierSpec
from repro.viz import series_table

from bench_util import write_artifact

N_BINS = [2, 4, 8, 16]


def _preprocessor(n_bins: int) -> TracePreprocessor:
    """SuperCloud preprocessor with a configurable bin count."""
    quart = BinningSpec(n_bins=n_bins)
    features = [
        FeatureSpec("is_new_user", kind="flag", true_label="New User"),
        FeatureSpec("sm_util", item_feature="SM Util",
                    binning=BinningSpec(n_bins=n_bins, zero_label="0%")),
        FeatureSpec("gmem_util", item_feature="GMem Util", binning=quart),
        FeatureSpec("gmem_used_gb", item_feature="GMem Used",
                    binning=BinningSpec(n_bins=n_bins, zero_label="0GB")),
        FeatureSpec("gpu_power", item_feature="GPU Power", binning=quart),
        FeatureSpec("cpu_util", item_feature="CPU Util", binning=quart),
        FeatureSpec("runtime", item_feature="Runtime", binning=quart),
        FeatureSpec("failed", kind="flag", true_label="Failed"),
    ]
    return TracePreprocessor(features=features)


def test_ablation_n_bins(benchmark, supercloud_table, paper_config):
    benchmark.pedantic(
        lambda: _preprocessor(4).run(supercloud_table), rounds=3, iterations=1
    )

    mean_support, mean_conf, mean_lift, n_rules = [], [], [], []
    for n_bins in N_BINS:
        db = _preprocessor(n_bins).run(supercloud_table).database
        result = mine_keyword_rules(db, "SM Util = 0%", paper_config)
        rules = result.all_rules
        n_rules.append(len(rules))
        if rules:
            mean_support.append(round(float(np.mean([r.support for r in rules])), 3))
            mean_conf.append(round(float(np.mean([r.confidence for r in rules])), 3))
            mean_lift.append(round(float(np.mean([r.lift for r in rules])), 2))
        else:
            mean_support.append(0.0)
            mean_conf.append(0.0)
            mean_lift.append(0.0)

    text = series_table(
        "n_bins",
        N_BINS,
        {
            "rules kept": n_rules,
            "mean support": mean_support,
            "mean confidence": mean_conf,
            "mean lift": mean_lift,
        },
        title="Bin-count ablation — SuperCloud underutilization rules",
    )
    write_artifact("ablation_nbins.txt", text)
    print("\n" + text)

    # the paper's trade-off, measured: finer bins → lower per-rule support;
    # coarser bins → lower lift than the quartile choice
    assert mean_support[-1] < mean_support[0]
    idx4 = N_BINS.index(4)
    assert mean_lift[idx4] >= mean_lift[0]
    # and rules exist at the paper's choice
    assert n_rules[idx4] > 0
