"""Table VII — job failure rules from the Philly trace.

Paper rows (shape targets):

* C1: Multi-GPU ⇒ Failed (lift ≈ 2.55) — gang jobs die with any worker;
* C2: New User ⇒ Failed (lift ≈ 2.46) — opposite of PAI's frequent-user
  finding;
* A1: failed min-SM-0 jobs got automatic retries (Num Attempts > 1);
* A2: some failures run very long before dying (Runtime = Bin4).
"""

from __future__ import annotations

from repro.core import mine_keyword_rules

from bench_util import keyword_table_artifact, rules_with


def test_table7_philly_failure(benchmark, all_results, all_itemsets, paper_config):
    db = all_results["Philly"].database

    result = benchmark.pedantic(
        lambda: mine_keyword_rules(
            db, "Failed", paper_config, itemsets=all_itemsets["Philly"]
        ),
        rounds=3,
        iterations=1,
    )

    keyword_table_artifact(
        result,
        "Table VII — job failure rules, Philly trace",
        "table7_philly_failure.txt",
        max_cause=2,
        max_char=2,
    )

    cause, char = result.cause, result.characteristic
    # C1: multi-GPU failures
    c1 = rules_with(cause, antecedent_parts=["Multi-GPU"], consequent_parts=["Failed"])
    assert c1 and max(r.lift for r in c1) > 1.5  # paper: 2.55
    # C2: new-user failures
    c2 = rules_with(cause, antecedent_parts=["New User"], consequent_parts=["Failed"])
    assert c2 and max(r.lift for r in c2) > 1.5  # paper: 2.46
    # A1: retry mechanism visible
    assert rules_with(
        char, antecedent_parts=["Failed"], consequent_parts=["Num Attempts > 1"]
    )
    # failure stays weakly predictable (conf ≈ 0.4 in the paper)
    assert max(r.confidence for r in c1 + c2) < 0.85
