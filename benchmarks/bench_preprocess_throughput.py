"""Preprocess-throughput benchmark: columnar ingest vs legacy paths.

Times the columnar ingest kernels against their pre-columnar references
on a synthetic PAI trace:

* trace generation — batched archetype sampling
  (:meth:`~repro.traces.synthetic.base.ArchetypeMixer.sample_columns`)
  vs the object-per-job path;
* preprocessing — integer-coded binning/encoding
  (:meth:`~repro.preprocess.TracePreprocessor.run`) vs the per-row
  string-label path (:meth:`~repro.preprocess.TracePreprocessor.run_legacy`);
* the preprocess result cache — a second :meth:`run` on the same table
  content returns the cached :class:`PreprocessResult`.

Every comparison asserts *answer equality first*: on a fixed table the
vectorised and legacy pipelines must produce byte-identical transaction
databases (same CSR arrays, same vocabulary order, same fingerprint).
The generation comparison is distributional — the columnar path draws
the same archetype mixture from different RNG consumption — so equality
is asserted per-path (vectorised vs legacy preprocess on *each* table),
not across paths.  Results go to ``BENCH_preprocess.json``
(machine-readable, repo root) and
``benchmarks/output/preprocess_throughput.txt`` (human-readable).

Usage::

    PYTHONPATH=src python benchmarks/bench_preprocess_throughput.py \
        [--n-jobs 100000] [--repeats 2] [--min-speedup 3.0] [--check-only]

``--check-only`` runs the equality assertions on small traces of all
three clusters and skips artifact writing — the CI perf-smoke job
(answers must match on every platform; speed is only asserted locally
at full scale, or with ``--min-speedup 0`` on shared CI runners).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from bench_util import write_artifact  # noqa: E402

from repro.core.bitmap import kernel_delta, kernel_snapshot  # noqa: E402
from repro.preprocess import clear_preprocess_cache  # noqa: E402
from repro.traces import (  # noqa: E402
    PAIConfig,
    PhillyConfig,
    SuperCloudConfig,
    generate_pai,
    generate_philly,
    generate_supercloud,
    pai_preprocessor,
    philly_preprocessor,
    supercloud_preprocessor,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_preprocess.json"

INGEST_KERNELS = (
    "ingest-generate",
    "ingest-bin",
    "ingest-encode",
    "ingest-tiers",
    "ingest-skew",
)


def _best_of(fn, repeats: int):
    """(best wall seconds, last result) over *repeats* runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def _assert_db_equal(a, b, context: str) -> None:
    """Vectorised and legacy databases must be byte-identical."""
    assert np.array_equal(a.indptr, b.indptr), f"{context}: indptr differs"
    assert np.array_equal(a.indices, b.indices), f"{context}: indices differ"
    assert [str(i) for i in a.vocabulary] == [
        str(i) for i in b.vocabulary
    ], f"{context}: vocabulary order differs"
    assert a.fingerprint() == b.fingerprint(), f"{context}: fingerprint differs"


def check_equality(n_jobs: int = 3000) -> None:
    """run() == run_legacy() on all three traces (and the columnar table)."""
    cases = [
        (
            "pai",
            generate_pai(PAIConfig(n_jobs=n_jobs, use_scheduler=False)),
            pai_preprocessor(),
        ),
        (
            "pai-columnar",
            generate_pai(
                PAIConfig(n_jobs=n_jobs, use_scheduler=False, columnar=True)
            ),
            pai_preprocessor(),
        ),
        (
            "supercloud",
            generate_supercloud(
                SuperCloudConfig(n_jobs=n_jobs, use_scheduler=False)
            ),
            supercloud_preprocessor(),
        ),
        (
            "philly",
            generate_philly(PhillyConfig(n_jobs=n_jobs, use_scheduler=False)),
            philly_preprocessor(),
        ),
    ]
    for name, table, pre in cases:
        vec = pre.run(table, use_cache=False)
        legacy = pre.run_legacy(table)
        _assert_db_equal(vec.database, legacy.database, name)
        assert vec.dropped_items == legacy.dropped_items, f"{name}: skew differs"
        print(
            f"{name:<14} vectorised == legacy "
            f"({len(vec.database)} transactions, "
            f"{len(vec.database.vocabulary)} items)"
        )


def run(n_jobs: int, repeats: int, min_speedup: float) -> dict:
    pre = pai_preprocessor()

    # -- answer equality first: a speedup over a wrong answer is worthless
    check_equality(n_jobs=min(n_jobs, 3000))

    # -- trace generation: object-per-job vs columnar blocks
    obj_cfg = PAIConfig(n_jobs=n_jobs, use_scheduler=False)
    col_cfg = PAIConfig(n_jobs=n_jobs, use_scheduler=False, columnar=True)
    before = kernel_snapshot()  # the legacy paths record no ingest-* kernels
    gen_legacy_sec, obj_table = _best_of(lambda: generate_pai(obj_cfg), repeats)
    gen_kernel_sec, col_table = _best_of(lambda: generate_pai(col_cfg), repeats)

    # -- preprocessing: int-coded vectorised vs per-row string labels,
    # each on its own table; equality per table asserted above
    clear_preprocess_cache()
    pre_legacy_sec, legacy_result = _best_of(
        lambda: pre.run_legacy(obj_table), repeats
    )
    pre_kernel_sec, vec_result = _best_of(
        lambda: pre.run(col_table, use_cache=False), repeats
    )
    kernels = {
        name: {"seconds": seconds, "calls": calls}
        for name, seconds, calls in kernel_delta(before, kernel_snapshot())
    }
    _assert_db_equal(
        vec_result.database,
        pre.run_legacy(col_table).database,
        "pai-columnar-full",
    )

    # -- preprocess result cache: same content → cached result
    clear_preprocess_cache()
    pre.run(col_table)  # prime
    hit_sec, hit_result = _best_of(lambda: pre.run(col_table), repeats)
    assert hit_result is not None
    assert (
        hit_result.database.fingerprint() == vec_result.database.fingerprint()
    ), "cache returned a different database"

    legacy_total = gen_legacy_sec + pre_legacy_sec
    kernel_total = gen_kernel_sec + pre_kernel_sec
    speedups = {
        "generate": gen_legacy_sec / gen_kernel_sec if gen_kernel_sec else float("inf"),
        "preprocess": pre_legacy_sec / pre_kernel_sec if pre_kernel_sec else float("inf"),
        "end_to_end": legacy_total / kernel_total if kernel_total else float("inf"),
    }
    if min_speedup > 0:
        assert speedups["end_to_end"] >= min_speedup, (
            f"end-to-end speedup {speedups['end_to_end']:.2f}x "
            f"below the {min_speedup:.1f}x floor"
        )

    payload = {
        "trace": "pai",
        "n_jobs": n_jobs,
        "n_transactions": len(vec_result.database),
        "n_items": len(vec_result.database.vocabulary),
        "repeats": repeats,
        "answers_equal": True,
        "stages_seconds": {
            "generate-kernel": gen_kernel_sec,
            "generate-legacy": gen_legacy_sec,
            "preprocess-kernel": pre_kernel_sec,
            "preprocess-legacy": pre_legacy_sec,
            "preprocess-cached-hit": hit_sec,
        },
        "ingest_kernels": kernels,
        "jobs_per_s": {
            "kernel": n_jobs / kernel_total if kernel_total else float("inf"),
            "legacy": n_jobs / legacy_total if legacy_total else float("inf"),
        },
        "speedup": speedups,
    }

    JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    lines = [
        "Preprocess throughput — columnar ingest vs legacy paths",
        f"PAI trace, {n_jobs} jobs ({len(vec_result.database)} transactions), "
        f"best of {repeats}",
        "",
        f"{'stage':<22} {'kernel':>10} {'legacy':>10} {'speedup':>9}",
        f"{'generate':<22} {gen_kernel_sec:>9.3f}s {gen_legacy_sec:>9.3f}s "
        f"{speedups['generate']:>8.2f}x",
        f"{'preprocess':<22} {pre_kernel_sec:>9.3f}s {pre_legacy_sec:>9.3f}s "
        f"{speedups['preprocess']:>8.2f}x",
        f"{'end-to-end':<22} {kernel_total:>9.3f}s {legacy_total:>9.3f}s "
        f"{speedups['end_to_end']:>8.2f}x",
        f"{'cached re-run':<22} {hit_sec:>9.6f}s",
        "",
        "ingest kernel breakdown (vectorised path):",
    ]
    for name in INGEST_KERNELS:
        if name in kernels:
            k = kernels[name]
            lines.append(
                f"  {name:<20} {k['seconds']:>9.3f}s  ({k['calls']} calls)"
            )
    lines += [
        "",
        f"jobs/s end-to-end: kernel {payload['jobs_per_s']['kernel']:,.0f}"
        f" / legacy {payload['jobs_per_s']['legacy']:,.0f}",
        "all vectorised/legacy databases identical (CSR, vocabulary, fingerprint)",
    ]
    text = "\n".join(lines)
    write_artifact("preprocess_throughput.txt", text)
    print(text)
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-jobs", type=int, default=100_000)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="fail unless end-to-end speedup reaches this floor (0 disables)",
    )
    parser.add_argument(
        "--check-only",
        action="store_true",
        help="assert vectorised/legacy answer equality only; write no artifacts",
    )
    args = parser.parse_args(argv)
    if args.check_only:
        check_equality()
        print("check-only: vectorised and legacy answers identical on all traces")
    else:
        run(args.n_jobs, args.repeats, args.min_speedup)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
