"""Fig. 5 — job exit-status distribution per trace.

Paper shape: PAI has the highest failure rate (and no user-kill label);
SuperCloud and Philly split terminations into completed / killed /
failed, with failed > 13 % everywhere.
"""

from __future__ import annotations

from collections import Counter

from repro.viz import bar_chart

from bench_util import write_artifact


def _status_shares(table):
    statuses = table["status"].to_list()
    counts = Counter(statuses)
    total = len(statuses)
    return {status: count / total for status, count in sorted(counts.items())}


def test_fig5_exit_status(benchmark, all_tables):
    shares = {name: _status_shares(t) for name, t in all_tables.items()}

    benchmark.pedantic(
        lambda: _status_shares(all_tables["PAI"]), rounds=5, iterations=1
    )

    parts = [
        bar_chart(s, title=f"Fig. 5 ({name}) — job exit status")
        for name, s in shares.items()
    ]
    text = "\n\n".join(parts)
    write_artifact("fig5_exit_status.txt", text)
    print("\n" + text)

    # shape checks
    assert "killed" not in shares["PAI"], "PAI has no user-kill label"
    assert "killed" in shares["SuperCloud"] and "killed" in shares["Philly"]
    failed = {name: s.get("failed", 0.0) for name, s in shares.items()}
    assert failed["PAI"] == max(failed.values())
    assert all(f > 0.10 for f in failed.values())  # paper: > 13 %
