"""Table II — GPU underutilization rules from the PAI trace.

Paper rows (shape targets, not exact metrics):

* C1/C2: low GPU request / low memory used ⇒ SM Util = 0 % (conf ≥ 0.9)
* C3: frequent group + unspecified GPU type ⇒ SM Util = 0 %
* C4: low CPU util + short runtime ⇒ SM Util = 0 %
* A1–A3: idle jobs are low-customisation submissions — frequent user,
  GPU type None, Tensorflow, Std CPU/memory requests.
"""

from __future__ import annotations

from repro.core import mine_keyword_rules

from bench_util import keyword_table_artifact, rules_with


def test_table2_pai_underutilization(benchmark, all_results, all_itemsets, paper_config):
    db = all_results["PAI"].database

    result = benchmark.pedantic(
        lambda: mine_keyword_rules(
            db, "SM Util = 0%", paper_config, itemsets=all_itemsets["PAI"]
        ),
        rounds=3,
        iterations=1,
    )

    keyword_table_artifact(
        result,
        "Table II — GPU underutilization rules, PAI trace",
        "table2_pai_underutil.txt",
        max_cause=5,
        max_char=3,
    )

    cause, char = result.cause, result.characteristic
    # C2 family: low memory used signals no GPU use
    low_mem = rules_with(cause, antecedent_parts=["Memory Used = Bin1"])
    assert low_mem and max(r.confidence for r in low_mem) > 0.6
    # C4 family: low CPU utilisation signal
    assert rules_with(result.all_rules, antecedent_parts=["CPU Util = Bin1"])
    # A-side: low-customisation characteristics (Tensorflow / GPU type None)
    assert rules_with(char, consequent_parts=["Tensorflow"])
    assert rules_with(char, consequent_parts=["GPU Type = None"])
    # paper thresholds hold on every kept rule
    assert all(r.lift >= 1.5 and r.support >= 0.05 - 1e-9 for r in result.all_rules)
