"""Match-kernel throughput — packed-bitmask batch kernel vs scalar index.

The serving hot path has two matcher implementations that must answer
identically:

* **scalar** — :meth:`RuleIndex.match_wire`, the inverted-index
  countdown, one job at a time (the CI oracle);
* **batch** — :meth:`RuleIndex.match_wire_batch`, the packed-bitmask
  kernel (:mod:`repro.serve.batchmatch`) that resolves a whole
  micro-batch in a few NumPy passes.

Two modes:

* ``--check-only`` — equality sweep: brute force vs scalar vs batch on
  a 1,000-transaction replay that includes empty jobs, duplicate items
  and unknown vocabulary.  Exit 1 on any divergence (fired ids,
  ranking, consequent flags, or wire bytes).
* measured (default) — single-process jobs/s for the scalar loop and
  for the kernel at several micro-batch sizes, with per-batch latency
  percentiles; results land in the ``match_kernel`` section of
  ``BENCH_serve.json``.  Unless ``--skip-trajectory`` is given, it also
  re-measures full service round trips (the batch kernel is now the
  service's default data plane) and appends a refreshed single-shard
  trajectory point.

The acceptance bar for the kernel itself is >= 2x the scalar loop on a
dev box with the 1k-rule book (``--min-speedup 2``); CI runs with the
floor at 0 and only enforces equality, because shared runners measure
the neighbour's workload, not the kernel.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import statistics
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent))

from bench_serve_throughput import N_JOBS, build_jobs, build_rulebook

from repro.core.items import as_item
from repro.serve import RuleIndex, RuleService, replay_traffic

BATCH_SIZES = (16, 64, 256, 1024)
N_CHECK_JOBS = 1000


def build_mixed_jobs(rng: random.Random, n_jobs: int) -> list[list[str]]:
    """Trace-shaped jobs plus the awkward cases the kernel must survive."""
    jobs = build_jobs(rng, n_jobs)
    for i, job in enumerate(jobs):
        if i % 17 == 0:
            job.append(f"Unknown Feature = {i}")  # outside the vocabulary
        if i % 13 == 0 and job:
            job.append(job[0])  # duplicate item
        if i % 29 == 0:
            jobs[i] = []  # empty transaction
    return jobs


def brute_force_fired(index: RuleIndex, job: list[str]) -> list[int]:
    """Reference semantics: subset-check every rule, ids ascending."""
    items = {as_item(text) for text in job}
    return [
        rule_id
        for rule_id, rule in enumerate(index.rules)
        if rule.antecedent <= items
    ]


def check_equality(index: RuleIndex, jobs: list[list[str]]) -> int:
    """Brute force vs scalar vs batch; returns the number of divergences."""
    failures = 0
    batch_wire = index.match_wire_batch(jobs)
    batch_near = index.explain_batch(jobs)
    n_fired = n_near = 0
    for i, job in enumerate(jobs):
        scalar_wire = index.match_wire(job)
        if batch_wire[i] != scalar_wire:  # ids, ranking, flags, AND bytes
            failures += 1
            print(f"DIVERGE wire job={i}: {batch_wire[i]!r:.80} "
                  f"!= {scalar_wire!r:.80}")
            continue
        brute = brute_force_fired(index, job)
        if [rule_id for rule_id, _ in scalar_wire] != brute:
            failures += 1
            print(f"DIVERGE brute job={i}")
            continue
        scalar_near = index.explain(job)
        if batch_near[i] != scalar_near:
            failures += 1
            print(f"DIVERGE near job={i}")
            continue
        n_fired += len(scalar_wire)
        n_near += len(scalar_near)
    print(
        f"equality sweep: {len(jobs)} jobs, {n_fired} firings, "
        f"{n_near} near-misses, {failures} divergences"
    )
    if not n_fired or not n_near:
        print("FAIL: sweep never exercised firings and near-misses")
        return failures + 1
    return failures


def measure_scalar(index: RuleIndex, jobs: list[list[str]]) -> float:
    start = time.perf_counter()
    for job in jobs:
        index.match_wire(job)
    return len(jobs) / (time.perf_counter() - start)


def measure_batch(
    index: RuleIndex, jobs: list[list[str]], batch_size: int
) -> dict:
    latencies: list[float] = []
    start = time.perf_counter()
    for lo in range(0, len(jobs), batch_size):
        t0 = time.perf_counter()
        index.match_wire_batch(jobs[lo : lo + batch_size])
        latencies.append(time.perf_counter() - t0)
    rps = len(jobs) / (time.perf_counter() - start)
    quantiles = statistics.quantiles(latencies, n=100)
    return {
        "batch_size": batch_size,
        "rps": round(rps, 1),
        "p50_ms": round(quantiles[49] * 1e3, 4),
        "p99_ms": round(quantiles[98] * 1e3, 4),
    }


def measure_service_rps(book, jobs: list[list[str]]) -> float:
    """Full single-process service round trips with the kernel active."""

    async def scenario():
        service = RuleService.from_rulebook(book, max_queue=4096, max_batch=128)
        await service.start(port=0)
        try:
            return await replay_traffic(
                "127.0.0.1", service.port, jobs, concurrency=8
            )
        finally:
            await service.shutdown()

    stats = asyncio.run(scenario())
    if stats.n_failed:
        raise RuntimeError(f"service replay dropped {stats.n_failed} requests")
    return stats.requests_per_second


def update_bench_doc(output: Path, section: dict, point: dict | None) -> None:
    """Write the ``match_kernel`` section, preserving the trajectory."""
    if output.exists():
        doc = json.loads(output.read_text())
    else:
        doc = {"benchmark": "serve_throughput", "trajectory": []}
    doc["match_kernel"] = section
    if point is not None:
        doc.setdefault("trajectory", []).append(point)
    output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="batch match kernel vs scalar index throughput"
    )
    parser.add_argument("--check-only", action="store_true",
                        help="run the equality sweep and exit")
    parser.add_argument("--n-jobs", type=int, default=N_JOBS)
    parser.add_argument("--min-speedup", type=float, default=0.0,
                        help="required best-batch/scalar ratio "
                             "(0 = record only; use 2 on a quiet dev box)")
    parser.add_argument("--skip-trajectory", action="store_true",
                        help="skip the full-service single-shard "
                             "trajectory refresh")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parents[1]
                        / "BENCH_serve.json")
    args = parser.parse_args(argv)

    rng = random.Random(20240)
    book = build_rulebook(rng)
    index = RuleIndex.from_rulebook(book)

    if args.check_only:
        jobs = build_mixed_jobs(rng, N_CHECK_JOBS)
        failures = check_equality(index, jobs)
        if failures:
            print(f"FAIL: {failures} divergences")
            return 1
        print("ok: batch kernel is indistinguishable from the scalar path")
        return 0

    jobs = build_jobs(rng, args.n_jobs)
    print(
        f"match kernel: {len(book)} rules "
        f"({index.kernel.n_words} mask words), {len(jobs)} jobs",
        flush=True,
    )
    scalar_rps = measure_scalar(index, jobs)
    print(f"  scalar: {scalar_rps:,.0f} jobs/s", flush=True)

    batches = []
    for batch_size in BATCH_SIZES:
        result = measure_batch(index, jobs, batch_size)
        result["speedup"] = round(result["rps"] / scalar_rps, 3)
        batches.append(result)
        print(
            f"  batch={batch_size:<5} {result['rps']:>10,.0f} jobs/s "
            f"({result['speedup']:.2f}x)  "
            f"p50 {result['p50_ms']:.3f}ms  p99 {result['p99_ms']:.3f}ms",
            flush=True,
        )
    best = max(batches, key=lambda r: r["rps"])
    print(
        f"best: batch={best['batch_size']} at {best['rps']:,.0f} jobs/s "
        f"= {best['speedup']:.2f}x scalar",
        flush=True,
    )

    point = None
    if not args.skip_trajectory:
        single_rps = measure_service_rps(book, jobs)
        print(
            f"single-shard service (batch kernel active): "
            f"{single_rps:,.0f} req/s",
            flush=True,
        )
        point = {
            "date": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
            "cpu_count": os.cpu_count() or 1,
            "n_rules": len(book),
            "n_jobs": len(jobs),
            "shards": 1,
            "mode": "single",
            "lb_policy": None,
            "concurrency": 8,
            "client_procs": 1,
            "single_rps": round(single_rps, 1),
            "sharded_rps": round(single_rps, 1),
            "speedup": 1.0,
            "min_speedup_enforced": 0.0,
        }

    section = {
        "date": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cpu_count": os.cpu_count() or 1,
        "n_rules": len(book),
        "n_jobs": len(jobs),
        "scalar_rps": round(scalar_rps, 1),
        "batches": batches,
        "best_batch_size": best["batch_size"],
        "best_speedup": best["speedup"],
        "min_speedup_enforced": args.min_speedup,
    }
    update_bench_doc(args.output, section, point)
    print(f"match_kernel section written to {args.output}", flush=True)

    if best["speedup"] < args.min_speedup:
        print(
            f"FAIL: speedup {best['speedup']:.2f}x < required "
            f"{args.min_speedup:.2f}x",
            flush=True,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
