"""Streaming-mining throughput — delta-maintained window vs full remine.

Measures the two costs that decide whether ``repro serve --follow`` can
hold its cadence:

* **ingest** — sustained events/s into the
  :class:`~repro.streaming.StreamingBitmapWindow` (granule packing,
  incremental per-item popcounts);
* **per-tick refresh** — the incremental path a hold tick runs
  (maintained tracked-itemset counts + :meth:`MiningEngine.recount_rules`
  + the drift gate) against the full remine the gate avoids
  (snapshot → mine → keyword rule generation, caching disabled so the
  baseline pays its honest price every tick).

The operating point is the acceptance bar: a 100k-transaction window
advanced by <= 1k-event deltas per tick, where the incremental tick must
be >= 5x faster than remining the window (``--min-speedup``).  Results
append a trajectory point to ``BENCH_stream.json`` and a human-readable
report to ``benchmarks/output/stream_throughput.txt``.

``--check-only`` is the CI equality sweep: on all three traces (PAI,
Philly, SuperCloud) the window's maintained item and tracked-itemset
counts must equal ground-truth :class:`PackedBitmaps` popcounts over its
own snapshot, and the incremental recount of a freshly-remined book must
reproduce the book's five metric columns bit-for-bit — through further
stream advance, granule eviction and a rebase.

Usage::

    PYTHONPATH=src python benchmarks/bench_stream_throughput.py \
        [--window 100000] [--delta 1000] [--ticks 5] [--min-speedup 5]
    PYTHONPATH=src python benchmarks/bench_stream_throughput.py \
        --check-only [--n-jobs 800]
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).parent))

from bench_util import write_artifact  # noqa: E402

from repro.core import MiningConfig  # noqa: E402
from repro.core.bitmap import PackedBitmaps  # noqa: E402
from repro.engine import MiningEngine  # noqa: E402
from repro.streaming import RuleBookRefresher, StreamingBitmapWindow  # noqa: E402
from repro.traces import (  # noqa: E402
    PAI_KEYWORDS,
    PAIConfig,
    PHILLY_KEYWORDS,
    PhillyConfig,
    SUPERCLOUD_KEYWORDS,
    SuperCloudConfig,
    generate_pai,
    generate_philly,
    generate_supercloud,
    pai_preprocessor,
    philly_preprocessor,
    supercloud_preprocessor,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_stream.json"

_TRACES = {
    "pai": (generate_pai, PAIConfig, pai_preprocessor, PAI_KEYWORDS),
    "philly": (generate_philly, PhillyConfig, philly_preprocessor, PHILLY_KEYWORDS),
    "supercloud": (
        generate_supercloud,
        SuperCloudConfig,
        supercloud_preprocessor,
        SUPERCLOUD_KEYWORDS,
    ),
}

#: a threshold above 1 means the drift gate never opens — measured ticks
#: stay on the incremental path and the full remine is timed separately
HOLD = 2.0


def _encoded_transactions(db) -> list[np.ndarray]:
    """The database's rows as sorted id arrays the window can ingest."""
    indptr, indices = db.indptr, db.indices
    return [
        np.sort(indices[indptr[i]: indptr[i + 1]]) for i in range(len(db))
    ]


def _full_remine(engine, window, keywords, config):
    """The work a remine tick does (sans book assembly): the baseline."""
    db = engine_db = window.snapshot()
    itemsets = engine.mine(engine_db, config)
    n_rules = 0
    for keyword in keywords.values():
        ruleset = engine.keyword_rules(db, keyword, config, itemsets)
        if ruleset.table is not None:
            n_rules += len(ruleset.table)
    return n_rules


# -- check-only: the CI equality sweep -----------------------------------------
def _assert_counts_match_bitmaps(window, label: str) -> None:
    """Maintained item + tracked counts == popcounts over the snapshot."""
    bitmaps = PackedBitmaps.from_database(window.snapshot())
    assert np.array_equal(
        window.item_support_counts()[: len(window.vocabulary)],
        bitmaps.item_counts(),
    ), f"{label}: maintained item counts drifted from bitmap popcounts"
    indptr, ids = window._tracked_indptr, window._tracked_ids
    expected = [
        bitmaps.support_count([int(x) for x in ids[indptr[k]: indptr[k + 1]]])
        for k in range(window.n_tracked)
    ]
    assert window.tracked_counts().tolist() == expected, (
        f"{label}: maintained tracked-itemset counts drifted"
    )


def _assert_recount_bit_identical(refresher, label: str) -> None:
    """A tick right after a remine must reproduce the book's metrics."""
    result = refresher.tick()
    assert not result.remined, f"{label}: hold tick unexpectedly remined"
    book_table = refresher.book.table
    assert len(result.recounted) == len(book_table), (
        f"{label}: recount row count differs from the book"
    )
    for name in ("support", "confidence", "lift", "leverage", "conviction"):
        ours = getattr(result.recounted, name)
        theirs = getattr(book_table, name)
        assert np.array_equal(ours, theirs, equal_nan=True), (
            f"{label}: recounted {name} not bit-identical to the remine"
        )


def check_stream_sweep(n_jobs: int) -> None:
    """Equality sweep over all three traces.

    Streams each preprocessed trace through a window small enough to
    force granule eviction, bootstraps a book from it, then interleaves
    further advance with three assertions: maintained counts == bitmap
    popcounts, hold ticks never remine, and the recount of a
    just-remined book is bit-identical to the remine itself.
    """
    config = MiningConfig()
    for trace, (generate, trace_config, preprocessor, keywords) in (
        _TRACES.items()
    ):
        db = preprocessor().run(generate(trace_config(n_jobs=n_jobs))).database
        txns = _encoded_transactions(db)
        warm = (3 * len(txns)) // 4
        window = StreamingBitmapWindow(
            max(64, warm // 2), vocabulary=db.vocabulary
        )
        window.extend_encoded(txns[:warm])
        refresher = RuleBookRefresher.bootstrap(
            window,
            dict(keywords),
            config,
            engine=MiningEngine(cache=False),
            threshold=HOLD,
            trace=trace,
        )
        assert len(refresher.book) > 0, f"{trace}: bootstrap mined no rules"
        _assert_counts_match_bitmaps(window, f"{trace}/bootstrap")
        _assert_recount_bit_identical(refresher, f"{trace}/bootstrap")

        # advance the stream (evicting granules), recheck, then rebase
        # via a forced remine and recheck the bit-identity once more
        step = max(1, (len(txns) - warm) // 3)
        for lo in range(warm, len(txns), step):
            window.extend_encoded(txns[lo: lo + step])
            _assert_counts_match_bitmaps(window, f"{trace}/advance@{lo}")
        remined = refresher.remine_now()
        assert remined.remined, f"{trace}: forced remine did not run"
        _assert_counts_match_bitmaps(window, f"{trace}/remine")
        _assert_recount_bit_identical(refresher, f"{trace}/remine")
        print(
            f"check-only [{trace} n={n_jobs}]: {len(refresher.book)} rules, "
            f"{refresher.window.n_tracked} tracked itemsets — maintained "
            "counts == popcounts, recount bit-identical to remine",
            flush=True,
        )


# -- measured mode -------------------------------------------------------------
def _append_trajectory(output: Path, point: dict) -> None:
    """BENCH_stream.json keeps every recorded point, newest last."""
    if output.exists():
        doc = json.loads(output.read_text())
    else:
        doc = {
            "benchmark": "stream_throughput",
            "description": (
                "streaming ingest rate and incremental per-tick refresh "
                "vs full-window remine; one trajectory point per run"
            ),
            "trajectory": [],
        }
    doc["trajectory"].append(point)
    output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def run_measured(
    window_size: int, delta: int, ticks: int, min_speedup: float, output: Path
) -> int:
    config = MiningConfig()  # paper defaults: support=0.05, max_len=5
    n_jobs = window_size + ticks * delta + delta
    print(
        f"generating pai trace: {n_jobs} jobs "
        f"(window {window_size}, {ticks} ticks x {delta}-event deltas)",
        flush=True,
    )
    db = pai_preprocessor().run(generate_pai(PAIConfig(n_jobs=n_jobs))).database
    txns = _encoded_transactions(db)
    assert len(txns) >= window_size + ticks * delta, "trace too short"

    window = StreamingBitmapWindow(window_size, vocabulary=db.vocabulary)
    t0 = time.perf_counter()
    window.extend_encoded(txns[:window_size])
    fill_s = time.perf_counter() - t0
    fill_eps = window_size / fill_s

    engine = MiningEngine(cache=False)
    t0 = time.perf_counter()
    refresher = RuleBookRefresher.bootstrap(
        window,
        dict(PAI_KEYWORDS),
        config,
        engine=engine,
        threshold=HOLD,
        trace="pai",
    )
    bootstrap_s = time.perf_counter() - t0
    n_rules = len(refresher.book)
    n_tracked = window.n_tracked

    incr_s: list[float] = []
    full_s: list[float] = []
    delta_eps: list[float] = []
    for k in range(ticks):
        lo = window_size + k * delta
        t0 = time.perf_counter()
        window.extend_encoded(txns[lo: lo + delta])
        delta_eps.append(delta / (time.perf_counter() - t0))

        t0 = time.perf_counter()
        result = refresher.tick()
        incr_s.append(time.perf_counter() - t0)
        assert not result.remined, "gate opened during a measured hold tick"

        t0 = time.perf_counter()
        _full_remine(engine, window, PAI_KEYWORDS, config)
        full_s.append(time.perf_counter() - t0)

    speedups = [f / i for f, i in zip(full_s, incr_s)]
    mean_speedup = sum(speedups) / len(speedups)
    min_observed = min(speedups)
    report = "\n".join(
        [
            f"stream throughput — {window_size}-txn window, "
            f"{delta}-event deltas, {ticks} ticks",
            f"  book: {n_rules} rules over {n_tracked} tracked itemsets "
            f"(bootstrap remine {bootstrap_s:.2f}s)",
            f"  ingest: fill {fill_eps:,.0f} events/s, "
            f"delta {sum(delta_eps) / len(delta_eps):,.0f} events/s",
            f"  per tick: incremental {sum(incr_s) / ticks * 1e3:.1f}ms, "
            f"full remine {sum(full_s) / ticks * 1e3:.1f}ms",
            f"  speedup: mean {mean_speedup:.1f}x, min {min_observed:.1f}x "
            f"(floor {min_speedup:.1f}x)",
            "",
        ]
    )
    print("\n" + report, flush=True)
    write_artifact("stream_throughput.txt", report)

    point = {
        "date": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "window": window_size,
        "delta": delta,
        "ticks": ticks,
        "n_rules": n_rules,
        "n_tracked_itemsets": n_tracked,
        "fill_events_per_s": round(fill_eps, 1),
        "delta_events_per_s": round(sum(delta_eps) / len(delta_eps), 1),
        "bootstrap_remine_s": round(bootstrap_s, 4),
        "incremental_tick_s": round(sum(incr_s) / ticks, 6),
        "full_remine_tick_s": round(sum(full_s) / ticks, 6),
        "speedup_mean": round(mean_speedup, 2),
        "speedup_min": round(min_observed, 2),
        "min_speedup_enforced": min_speedup,
    }
    _append_trajectory(output, point)
    print(f"trajectory point appended to {output}", flush=True)

    if min_observed < min_speedup:
        print(
            f"FAIL: per-tick speedup {min_observed:.2f}x < "
            f"required {min_speedup:.2f}x",
            flush=True,
        )
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--window", type=int, default=100_000,
                        help="retained window size in transactions")
    parser.add_argument("--delta", type=int, default=1000,
                        help="events appended per measured tick")
    parser.add_argument("--ticks", type=int, default=5)
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="required full-remine/incremental ratio per tick")
    parser.add_argument("--n-jobs", type=int, default=800,
                        help="per-trace job count for --check-only")
    parser.add_argument(
        "--check-only",
        action="store_true",
        help="assert maintained-count and recount bit-identity on all "
             "three traces; write no artifacts",
    )
    parser.add_argument("--output", type=Path, default=JSON_PATH)
    args = parser.parse_args(argv)

    if args.check_only:
        check_stream_sweep(args.n_jobs)
        return 0
    return run_measured(
        args.window, args.delta, args.ticks, args.min_speedup, args.output
    )


if __name__ == "__main__":
    raise SystemExit(main())
