"""Ablation — the itemset length cap (Sec. III-D).

The paper limits frequent itemsets to 5 items "which prevents generating
rules that are too descriptive and specific to the samples".  This bench
sweeps the cap on the PAI trace, measuring the itemset/rule blow-up the
cap prevents and verifying that the kept (pruned) rule families are
stable once the cap covers the planted pattern sizes.
"""

from __future__ import annotations

from repro.core import MiningConfig, mine_frequent_itemsets, mine_keyword_rules
from repro.viz import series_table

from bench_util import write_artifact

MAXLENS = [2, 3, 4, 5, 6]


def test_ablation_maxlen(benchmark, all_results, paper_config):
    db = all_results["PAI"].database

    benchmark.pedantic(
        lambda: mine_frequent_itemsets(db, paper_config.with_(max_len=5)),
        rounds=3,
        iterations=1,
    )

    n_itemsets, n_rules, n_kept = [], [], []
    for max_len in MAXLENS:
        config = paper_config.with_(max_len=max_len)
        fis = mine_frequent_itemsets(db, config)
        result = mine_keyword_rules(db, "SM Util = 0%", config, itemsets=fis)
        n_itemsets.append(len(fis))
        n_rules.append(result.n_rules_before_pruning)
        n_kept.append(len(result))

    text = series_table(
        "max_len",
        MAXLENS,
        {
            "frequent itemsets": n_itemsets,
            "rules before pruning": n_rules,
            "rules kept": n_kept,
        },
        title="Itemset-length-cap ablation — PAI underutilization keyword",
    )
    write_artifact("ablation_maxlen.txt", text)
    print("\n" + text)

    # the blow-up the cap controls: monotone growth, steep past length 3
    assert n_itemsets == sorted(n_itemsets)
    assert n_rules == sorted(n_rules)
    assert n_rules[-1] > 3 * n_rules[0]
    # pruning keeps the output manageable once nested rules exist (at
    # max_len=2 every rule is a 1⇒1 pair, so Conditions 1–4 have nothing
    # to compare and kept == raw)
    for max_len, kept, raw in zip(MAXLENS, n_kept, n_rules):
        assert kept <= raw
        if max_len >= 3:
            assert kept < raw
