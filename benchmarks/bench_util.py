"""Helpers shared by the benchmark harness (artifact persistence)."""

from __future__ import annotations

from pathlib import Path

OUTPUT_DIR = Path(__file__).parent / "output"


def write_artifact(name: str, text: str) -> None:
    """Persist a regenerated table/figure under benchmarks/output/."""
    OUTPUT_DIR.mkdir(exist_ok=True)
    (OUTPUT_DIR / name).write_text(text, encoding="utf-8")


def rules_with(rules, antecedent_parts=(), consequent_parts=()):
    """Rules whose sides contain all the given item texts."""
    out = []
    for rule in rules:
        ant = {i.render() for i in rule.antecedent}
        cons = {i.render() for i in rule.consequent}
        if set(antecedent_parts) <= ant and set(consequent_parts) <= cons:
            out.append(rule)
    return out


def keyword_table_artifact(result, title, filename, max_cause=6, max_char=3):
    """Format a keyword rule set as a paper-style table and persist it."""
    from repro.analysis import format_rule_table

    table = format_rule_table(result, title, max_cause, max_char)
    text = str(table) + f"\n\n(total kept rules: {len(result)}; {result.report})"
    write_artifact(filename, text)
    print("\n" + text)
    return table
