"""Fig. 4 — CDF of GPU SM utilisation; near-zero shares per trace.

Paper: 46 % (PAI), 10 % (SuperCloud) and 35 % (Philly) of jobs "barely
use the GPU processor".  Shape targets: the ordering PAI > Philly >
SuperCloud and coarse magnitudes.
"""

from __future__ import annotations

from repro.viz import cdf_chart, empirical_cdf

from bench_util import write_artifact

PAPER_NEAR_ZERO = {"PAI": 0.46, "SuperCloud": 0.10, "Philly": 0.35}


def test_fig4_sm_util_cdf(benchmark, all_tables):
    cdfs = {
        name: empirical_cdf(table["sm_util"].values)
        for name, table in all_tables.items()
    }

    pai_values = all_tables["PAI"]["sm_util"].values
    benchmark.pedantic(lambda: empirical_cdf(pai_values), rounds=5, iterations=1)

    parts = []
    shares = {}
    for name, cdf in cdfs.items():
        shares[name] = cdf.share_at_most(0.0)
        parts.append(
            cdf_chart(
                cdf,
                [0, 10, 25, 50, 75, 100],
                title=(
                    f"Fig. 4 ({name}) — SM-util CDF; near-zero share "
                    f"{shares[name]:.1%} (paper {PAPER_NEAR_ZERO[name]:.0%})"
                ),
            )
        )
    text = "\n\n".join(parts)
    write_artifact("fig4_sm_util_cdf.txt", text)
    print("\n" + text)

    # shape: ordering and coarse magnitudes
    assert shares["PAI"] > shares["Philly"] > shares["SuperCloud"]
    assert abs(shares["PAI"] - 0.46) < 0.15
    assert abs(shares["Philly"] - 0.35) < 0.12
    assert abs(shares["SuperCloud"] - 0.10) < 0.10
    # the CDF is 1 at full utilisation
    for cdf in cdfs.values():
        assert cdf.at(100.0) == 1.0
