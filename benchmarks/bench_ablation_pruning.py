"""Ablation — pruning parameters C_lift / C_supp (Sec. III-D).

The paper fixes C_lift = C_supp = 1.5 for all traces and argues the
thresholds "function more as filters rather than complex hyperparameters":
raising them prunes more, lowering them prunes less, monotonically.  This
bench sweeps both parameters on the PAI underutilisation rules and checks
that monotonicity — the property that makes the knobs easy to tune.
"""

from __future__ import annotations

from repro.core import PruningConfig, generate_rules, prune_rules
from repro.viz import series_table

from bench_util import write_artifact

SWEEP = [1.0, 1.25, 1.5, 2.0, 3.0]


def test_ablation_pruning_parameters(benchmark, all_results, all_itemsets, paper_config):
    keyword = "SM Util = 0%"
    db = all_results["PAI"].database
    kw_id = db.vocabulary.id_of(keyword)
    rules = generate_rules(
        all_itemsets["PAI"], min_lift=paper_config.min_lift, keyword_ids=(kw_id,)
    )

    benchmark.pedantic(
        lambda: prune_rules(rules, keyword, PruningConfig()), rounds=3, iterations=1
    )

    kept_by_clift = []
    for c in SWEEP:
        kept, _ = prune_rules(rules, keyword, PruningConfig(c_lift=c, c_supp=1.5))
        kept_by_clift.append(len(kept))
    kept_by_csupp = []
    for c in SWEEP:
        kept, _ = prune_rules(rules, keyword, PruningConfig(c_lift=1.5, c_supp=c))
        kept_by_csupp.append(len(kept))

    text = series_table(
        "C value",
        SWEEP,
        {"kept (C_lift sweep)": kept_by_clift, "kept (C_supp sweep)": kept_by_csupp},
        title=(
            f"Pruning ablation — PAI underutilization "
            f"({len(rules)} rules before pruning)"
        ),
    )
    write_artifact("ablation_pruning.txt", text)
    print("\n" + text)

    # a higher C_lift makes Conditions 1/3/4 fire more easily → fewer rules
    assert kept_by_clift == sorted(kept_by_clift, reverse=True)
    # every setting keeps at least something and prunes something
    assert 0 < min(kept_by_clift) and max(kept_by_clift) < len(rules)
