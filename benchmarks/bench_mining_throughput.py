"""Mining-throughput benchmark: packed-bitmap kernels vs legacy paths.

Times the production kernels against their pre-kernel references on a
synthetic PAI trace at the paper's operating point (support = 5 %,
max_len = 5):

* FP-Growth — struct-of-arrays tree (:func:`repro.core.fpgrowth.fpgrowth`)
  vs the object tree (:func:`~repro.core.fpgrowth.fpgrowth_object`);
* Eclat / Apriori — packed uint64 bitsets vs the dense boolean matrix
  (:mod:`repro.core.legacy`);
* SON phase-2 counting — packed vs dense candidate counting;
* rule generation — batch numpy scoring (timed; answer checked against
  scalar :func:`~repro.core.metrics.compute_metrics` in the test suite).

Every comparison asserts *answer equality first* — a speedup over a
wrong answer is worthless — then reports wall times, jobs/s and
speedups.  Results go to ``BENCH_mining.json`` (machine-readable, repo
root) and ``benchmarks/output/mining_throughput.txt`` (human-readable).

Usage::

    PYTHONPATH=src python benchmarks/bench_mining_throughput.py \
        [--n-jobs 100000] [--repeats 2] [--check-only]

``--check-only`` runs the equality assertions on a small trace and skips
artifact writing — the CI perf-smoke job (answers must match on every
platform; speed is only asserted locally at full scale).
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_util import write_artifact  # noqa: E402

from repro.core import MiningConfig, generate_rules  # noqa: E402
from repro.core.bitmap import clear_bitmap_cache  # noqa: E402
from repro.core.fpgrowth import fpgrowth, fpgrowth_object  # noqa: E402
from repro.core.eclat import eclat  # noqa: E402
from repro.core.apriori import apriori  # noqa: E402
from repro.core.itemsets import FrequentItemsets  # noqa: E402
from repro.core.legacy import (  # noqa: E402
    apriori_dense,
    count_candidates_dense,
    eclat_dense,
)
from repro.parallel.partition import count_candidates  # noqa: E402
from repro.traces import PAIConfig, generate_pai, pai_preprocessor  # noqa: E402

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_mining.json"


def _best_of(fn, repeats: int):
    """(best wall seconds, last result) over *repeats* runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run(n_jobs: int, repeats: int, check_only: bool) -> dict:
    config = MiningConfig()  # paper defaults: support=0.05, max_len=5
    table = generate_pai(PAIConfig(n_jobs=n_jobs))
    db = pai_preprocessor().run(table).database
    n = len(db)

    stages: dict[str, float] = {}

    # bitmap build (cold), then mining reuses the cached build
    clear_bitmap_cache()
    t0 = time.perf_counter()
    db.bitmaps()
    stages["bitmap-build"] = time.perf_counter() - t0

    pairs = {
        "fpgrowth": (fpgrowth, fpgrowth_object),
        "eclat": (eclat, eclat_dense),
        "apriori": (apriori, apriori_dense),
    }
    speedups: dict[str, float] = {}
    reference = None
    for name, (kernel_fn, legacy_fn) in pairs.items():
        k_sec, k_out = _best_of(
            lambda f=kernel_fn: f(db, config.min_support, config.max_len), repeats
        )
        l_sec, l_out = _best_of(
            lambda f=legacy_fn: f(db, config.min_support, config.max_len), repeats
        )
        assert k_out == l_out, f"{name}: kernel and legacy answers differ"
        if reference is None:
            reference = k_out
        else:
            assert k_out == reference, f"{name}: differs from fpgrowth"
        stages[f"mine-{name}-kernel"] = k_sec
        stages[f"mine-{name}-legacy"] = l_sec
        speedups[name] = l_sec / k_sec if k_sec > 0 else float("inf")

    # SON phase 2: exact candidate counting, packed vs dense
    candidates = set(reference)
    c_sec, packed_counts = _best_of(
        lambda: count_candidates(db, candidates), repeats
    )
    d_sec, dense_counts = _best_of(
        lambda: count_candidates_dense(db, candidates), repeats
    )
    assert packed_counts == dense_counts, "phase-2 counting answers differ"
    stages["count-candidates-kernel"] = c_sec
    stages["count-candidates-legacy"] = d_sec
    speedups["count-candidates"] = d_sec / c_sec if c_sec > 0 else float("inf")

    # rule generation over the mined itemsets (batch scoring path)
    itemsets = FrequentItemsets(
        dict(reference), db.vocabulary, n, config.min_support, config.max_len
    )
    r_sec, rules = _best_of(
        lambda: generate_rules(itemsets, min_lift=config.min_lift), repeats
    )
    stages["generate-rules"] = r_sec

    kernel_mine = stages["mine-fpgrowth-kernel"]
    legacy_mine = stages["mine-fpgrowth-legacy"]
    payload = {
        "trace": "pai",
        "n_jobs": n_jobs,
        "n_transactions": n,
        "min_support": config.min_support,
        "max_len": config.max_len,
        "repeats": repeats,
        "n_itemsets": len(reference),
        "n_rules": len(rules),
        "answers_equal": True,
        "stages_seconds": stages,
        "jobs_per_s": {
            "kernel": n / kernel_mine if kernel_mine > 0 else float("inf"),
            "legacy": n / legacy_mine if legacy_mine > 0 else float("inf"),
        },
        "speedup": {**speedups, "end_to_end_mine": speedups["fpgrowth"]},
    }

    if not check_only:
        JSON_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        lines = [
            "Mining throughput — packed-bitmap kernels vs legacy paths",
            f"PAI trace, {n_jobs} jobs ({n} transactions), "
            f"support={config.min_support}, max_len={config.max_len}, "
            f"best of {repeats}",
            "",
            f"{'stage':<28} {'kernel':>10} {'legacy':>10} {'speedup':>9}",
        ]
        for name in ("fpgrowth", "eclat", "apriori", "count-candidates"):
            prefix = f"mine-{name}" if name in pairs else name
            k = stages[f"{prefix}-kernel"]
            l = stages[f"{prefix}-legacy"]
            lines.append(
                f"{name:<28} {k:>9.3f}s {l:>9.3f}s {speedups[name]:>8.2f}x"
            )
        lines += [
            f"{'bitmap-build':<28} {stages['bitmap-build']:>9.3f}s",
            f"{'generate-rules':<28} {stages['generate-rules']:>9.3f}s",
            "",
            f"jobs/s (fpgrowth mine): kernel {payload['jobs_per_s']['kernel']:,.0f}"
            f" / legacy {payload['jobs_per_s']['legacy']:,.0f}",
            f"itemsets: {len(reference)}, rules: {len(rules)}"
            " — all kernel/legacy answers identical",
        ]
        text = "\n".join(lines)
        write_artifact("mining_throughput.txt", text)
        print(text)
    else:
        print(
            f"check-only: {len(reference)} itemsets, {len(rules)} rules — "
            "kernel and legacy answers identical on all paths"
        )
    return payload


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-jobs", type=int, default=100_000)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--check-only",
        action="store_true",
        help="assert kernel/legacy answer equality only; write no artifacts",
    )
    args = parser.parse_args(argv)
    run(args.n_jobs, args.repeats, args.check_only)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
