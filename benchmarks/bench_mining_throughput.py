"""Mining-throughput benchmark: packed-bitmap kernels vs legacy paths.

Times the production kernels against their pre-kernel references on a
synthetic PAI trace at the paper's operating point (support = 5 %,
max_len = 5):

* FP-Growth — struct-of-arrays tree (:func:`repro.core.fpgrowth.fpgrowth`)
  vs the object tree (:func:`~repro.core.fpgrowth.fpgrowth_object`);
* Eclat / Apriori — packed uint64 bitsets vs the dense boolean matrix
  (:mod:`repro.core.legacy`);
* SON phase-2 counting — packed vs dense candidate counting;
* rule generation — the columnar RuleTable kernel
  (:func:`~repro.core.rules.generate_rule_table`) vs the legacy
  per-split object path (:func:`~repro.core.rules.generate_rules_legacy`),
  asserted bit-identical (same rules, same order);
* keyword pruning — the vectorised Conditions 1–4 kernel
  (:func:`~repro.core.pruning.prune_rule_table`).

Every comparison asserts *answer equality first* — a speedup over a
wrong answer is worthless — then reports wall times, jobs/s, rules/s and
speedups.  Results go to ``BENCH_mining.json`` (machine-readable, repo
root) and ``benchmarks/output/mining_throughput.txt`` (human-readable).

Usage::

    PYTHONPATH=src python benchmarks/bench_mining_throughput.py \
        [--n-jobs 100000] [--repeats 2] [--check-only]

``--check-only`` runs the equality assertions on a small trace and skips
artifact writing — the CI perf-smoke job (answers must match on every
platform; speed is only asserted locally at full scale).  In this mode
the rule-generation and pruning sweep covers all three traces (PAI,
Philly, SuperCloud) and every paper keyword of each.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).parent))

from bench_util import write_artifact  # noqa: E402

from repro.core import MiningConfig  # noqa: E402
from repro.core.bitmap import clear_bitmap_cache  # noqa: E402
from repro.core.fpgrowth import fpgrowth, fpgrowth_object  # noqa: E402
from repro.core.eclat import eclat  # noqa: E402
from repro.core.apriori import apriori  # noqa: E402
from repro.core.items import as_item  # noqa: E402
from repro.core.itemsets import FrequentItemsets  # noqa: E402
from repro.core.legacy import (  # noqa: E402
    apriori_dense,
    count_candidates_dense,
    eclat_dense,
)
from repro.core.pruning import prune_rule_table, prune_rules_legacy  # noqa: E402
from repro.core.rules import (  # noqa: E402
    generate_rule_table,
    generate_rules_legacy,
)
from repro.parallel.partition import count_candidates  # noqa: E402
from repro.traces import (  # noqa: E402
    PAI_KEYWORDS,
    PAIConfig,
    PHILLY_KEYWORDS,
    PhillyConfig,
    SUPERCLOUD_KEYWORDS,
    SuperCloudConfig,
    generate_pai,
    generate_philly,
    generate_supercloud,
    pai_preprocessor,
    philly_preprocessor,
    supercloud_preprocessor,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
JSON_PATH = REPO_ROOT / "BENCH_mining.json"


def _best_of(fn, repeats: int):
    """(best wall seconds, last result) over *repeats* runs."""
    best = float("inf")
    result = None
    for _ in range(repeats):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def run(n_jobs: int, repeats: int, check_only: bool) -> dict:
    config = MiningConfig()  # paper defaults: support=0.05, max_len=5
    table = generate_pai(PAIConfig(n_jobs=n_jobs))
    db = pai_preprocessor().run(table).database
    n = len(db)

    stages: dict[str, float] = {}

    # bitmap build (cold), then mining reuses the cached build
    clear_bitmap_cache()
    t0 = time.perf_counter()
    db.bitmaps()
    stages["bitmap-build"] = time.perf_counter() - t0

    pairs = {
        "fpgrowth": (fpgrowth, fpgrowth_object),
        "eclat": (eclat, eclat_dense),
        "apriori": (apriori, apriori_dense),
    }
    speedups: dict[str, float] = {}
    reference = None
    for name, (kernel_fn, legacy_fn) in pairs.items():
        k_sec, k_out = _best_of(
            lambda f=kernel_fn: f(db, config.min_support, config.max_len), repeats
        )
        l_sec, l_out = _best_of(
            lambda f=legacy_fn: f(db, config.min_support, config.max_len), repeats
        )
        assert k_out == l_out, f"{name}: kernel and legacy answers differ"
        if reference is None:
            reference = k_out
        else:
            assert k_out == reference, f"{name}: differs from fpgrowth"
        stages[f"mine-{name}-kernel"] = k_sec
        stages[f"mine-{name}-legacy"] = l_sec
        speedups[name] = l_sec / k_sec if k_sec > 0 else float("inf")

    # SON phase 2: exact candidate counting, packed vs dense
    candidates = set(reference)
    c_sec, packed_counts = _best_of(
        lambda: count_candidates(db, candidates), repeats
    )
    d_sec, dense_counts = _best_of(
        lambda: count_candidates_dense(db, candidates), repeats
    )
    assert packed_counts == dense_counts, "phase-2 counting answers differ"
    stages["count-candidates-kernel"] = c_sec
    stages["count-candidates-legacy"] = d_sec
    speedups["count-candidates"] = d_sec / c_sec if c_sec > 0 else float("inf")

    # rule generation over the mined itemsets: columnar kernel vs legacy
    # object path, bit-identical output in identical order
    itemsets = FrequentItemsets(
        dict(reference), db.vocabulary, n, config.min_support, config.max_len
    )
    rk_sec, rule_table = _best_of(
        lambda: generate_rule_table(itemsets, min_lift=config.min_lift), repeats
    )
    rl_sec, legacy_rules = _best_of(
        lambda: generate_rules_legacy(itemsets, min_lift=config.min_lift), repeats
    )
    rules = rule_table.to_rules()
    assert rules == legacy_rules, "generate-rules: kernel and legacy differ"
    stages["generate-rules-kernel"] = rk_sec
    stages["generate-rules-legacy"] = rl_sec
    speedups["generate-rules"] = rl_sec / rk_sec if rk_sec > 0 else float("inf")

    # keyword pruning (Conditions 1-4 kernel) on the paper's PAI
    # underutilisation keyword — the engine's prune stage
    prune_kw = as_item(PAI_KEYWORDS["underutilization"])
    kw_id = db.vocabulary.get_id(prune_kw)
    assert kw_id is not None, "PAI trace lost its underutilisation keyword"
    kw_table = generate_rule_table(
        itemsets, min_lift=config.min_lift, keyword_ids=(kw_id,)
    )
    p_sec, pruned = _best_of(
        lambda: prune_rule_table(kw_table, prune_kw), repeats
    )
    kept_table, prune_report = pruned
    stages["prune-kernel"] = p_sec

    kernel_mine = stages["mine-fpgrowth-kernel"]
    legacy_mine = stages["mine-fpgrowth-legacy"]
    rules_stage = stages["generate-rules-kernel"] + stages["prune-kernel"]
    payload = {
        "trace": "pai",
        "n_jobs": n_jobs,
        "n_transactions": n,
        "min_support": config.min_support,
        "max_len": config.max_len,
        "repeats": repeats,
        "n_itemsets": len(reference),
        "n_rules": len(rules),
        "n_keyword_rules": len(kw_table),
        "n_rules_kept_after_prune": len(kept_table),
        "answers_equal": True,
        "stages_seconds": stages,
        "jobs_per_s": {
            "kernel": n / kernel_mine if kernel_mine > 0 else float("inf"),
            "legacy": n / legacy_mine if legacy_mine > 0 else float("inf"),
        },
        "rules_per_s": {
            "kernel": len(rules) / rk_sec if rk_sec > 0 else float("inf"),
            "legacy": len(rules) / rl_sec if rl_sec > 0 else float("inf"),
        },
        "generate_plus_prune_seconds": rules_stage,
        "generate_plus_prune_vs_mine": (
            rules_stage / kernel_mine if kernel_mine > 0 else float("inf")
        ),
        "speedup": {**speedups, "end_to_end_mine": speedups["fpgrowth"]},
    }

    if not check_only:
        # merge-preserve: other benches (bench_shm_swap.py) park their
        # own sections in the same artifact
        doc = json.loads(JSON_PATH.read_text()) if JSON_PATH.exists() else {}
        doc.update(payload)
        JSON_PATH.write_text(json.dumps(doc, indent=2) + "\n", encoding="utf-8")
        lines = [
            "Mining throughput — packed-bitmap kernels vs legacy paths",
            f"PAI trace, {n_jobs} jobs ({n} transactions), "
            f"support={config.min_support}, max_len={config.max_len}, "
            f"best of {repeats}",
            "",
            f"{'stage':<28} {'kernel':>10} {'legacy':>10} {'speedup':>9}",
        ]
        for name in (
            "fpgrowth",
            "eclat",
            "apriori",
            "count-candidates",
            "generate-rules",
        ):
            prefix = f"mine-{name}" if name in pairs else name
            k = stages[f"{prefix}-kernel"]
            l = stages[f"{prefix}-legacy"]
            lines.append(
                f"{name:<28} {k:>9.3f}s {l:>9.3f}s {speedups[name]:>8.2f}x"
            )
        lines += [
            f"{'bitmap-build':<28} {stages['bitmap-build']:>9.3f}s",
            f"{'prune-kernel':<28} {stages['prune-kernel']:>9.3f}s",
            "",
            f"jobs/s (fpgrowth mine): kernel {payload['jobs_per_s']['kernel']:,.0f}"
            f" / legacy {payload['jobs_per_s']['legacy']:,.0f}",
            f"rules/s (generation):   kernel {payload['rules_per_s']['kernel']:,.0f}"
            f" / legacy {payload['rules_per_s']['legacy']:,.0f}",
            f"generate+prune {rules_stage:.3f}s vs mine-fpgrowth-kernel "
            f"{kernel_mine:.3f}s "
            f"({payload['generate_plus_prune_vs_mine']:.2f}x of mine)",
            f"itemsets: {len(reference)}, rules: {len(rules)}, "
            f"keyword rules: {len(kw_table)} → {len(kept_table)} kept "
            f"({prune_report.n_pruned} pruned)"
            " — all kernel/legacy answers identical",
        ]
        text = "\n".join(lines)
        write_artifact("mining_throughput.txt", text)
        print(text)
    else:
        print(
            f"check-only [pai n={n_jobs}]: {len(reference)} itemsets, "
            f"{len(rules)} rules, prune kept {len(kept_table)}/{len(kw_table)} — "
            "kernel and legacy answers identical on all paths"
        )
    return payload


#: trace registry for the check-only rule/prune equality sweep
_SWEEP_TRACES = {
    "pai": (generate_pai, PAIConfig, pai_preprocessor, PAI_KEYWORDS),
    "philly": (generate_philly, PhillyConfig, philly_preprocessor, PHILLY_KEYWORDS),
    "supercloud": (
        generate_supercloud,
        SuperCloudConfig,
        supercloud_preprocessor,
        SUPERCLOUD_KEYWORDS,
    ),
}


def check_rules_sweep(n_jobs: int) -> None:
    """Assert kernel == legacy for generation AND pruning on every trace.

    For each of the three traces: the full rule table must match the
    legacy object path bit-for-bit (same rules, same order), and for
    every paper keyword the vectorised Conditions 1–4 kernel must keep
    exactly the rules the legacy oracle keeps, with identical
    per-condition prune counts.
    """
    config = MiningConfig()
    for trace, (generate, trace_config, preprocessor, keywords) in (
        _SWEEP_TRACES.items()
    ):
        db = preprocessor().run(generate(trace_config(n_jobs=n_jobs))).database
        counts = fpgrowth(db, config.min_support, config.max_len)
        itemsets = FrequentItemsets(
            dict(counts), db.vocabulary, len(db), config.min_support, config.max_len
        )
        table = generate_rule_table(itemsets, min_lift=config.min_lift)
        legacy = generate_rules_legacy(itemsets, min_lift=config.min_lift)
        assert table.to_rules() == legacy, (
            f"{trace}: generate-rules kernel and legacy differ"
        )
        n_pruned_checks = 0
        for kw_text in keywords.values():
            kw = as_item(kw_text)
            kw_id = db.vocabulary.get_id(kw)
            if kw_id is None:
                continue
            kw_table = generate_rule_table(
                itemsets, min_lift=config.min_lift, keyword_ids=(kw_id,)
            )
            kept_table, report = prune_rule_table(kw_table, kw)
            kept_legacy, report_legacy = prune_rules_legacy(kw_table.to_rules(), kw)
            assert kept_table.to_rules() == kept_legacy, (
                f"{trace}/{kw_text}: prune kernel and legacy keep different rules"
            )
            assert report.pruned_by_condition == report_legacy.pruned_by_condition, (
                f"{trace}/{kw_text}: per-condition prune counts differ"
            )
            assert (report.n_input, report.n_kept) == (
                report_legacy.n_input,
                report_legacy.n_kept,
            ), f"{trace}/{kw_text}: prune report totals differ"
            n_pruned_checks += 1
        print(
            f"check-only [{trace} n={n_jobs}]: {len(table)} rules bit-identical "
            f"to legacy; pruning equal on {n_pruned_checks} keyword(s)"
        )


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--n-jobs", type=int, default=100_000)
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--check-only",
        action="store_true",
        help="assert kernel/legacy answer equality only; write no artifacts",
    )
    args = parser.parse_args(argv)
    run(args.n_jobs, args.repeats, args.check_only)
    if args.check_only:
        check_rules_sweep(args.n_jobs)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
