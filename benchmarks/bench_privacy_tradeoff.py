"""Extension — privacy/utility trade-off of DP itemset release (Sec. VI).

The paper claims adjacent privacy-preserving mining work can slot into
its workflow because pruning runs after rule generation.  This bench
quantifies the cost of that integration on the SuperCloud trace: itemset
recovery F1 against the non-private table as ε varies.
"""

from __future__ import annotations

import numpy as np

from repro.core import MiningConfig
from repro.privacy import DPConfig, dp_mine_frequent_itemsets, recovery_f1
from repro.viz import series_table

from bench_util import write_artifact

EPSILONS = [1e5, 100.0, 10.0, 1.0, 0.1]


def test_privacy_utility_tradeoff(benchmark, all_results, all_itemsets, paper_config):
    db = all_results["SuperCloud"].database
    reference = all_itemsets["SuperCloud"]

    benchmark.pedantic(
        lambda: dp_mine_frequent_itemsets(
            db, paper_config, DPConfig(epsilon=1.0, seed=0)
        ),
        rounds=3,
        iterations=1,
    )

    f1_means = []
    released_counts = []
    for epsilon in EPSILONS:
        f1s, sizes = [], []
        for seed in range(3):
            result = dp_mine_frequent_itemsets(
                db, paper_config, DPConfig(epsilon=epsilon, seed=seed)
            )
            f1s.append(recovery_f1(result.itemsets, reference))
            sizes.append(len(result.itemsets))
        f1_means.append(round(float(np.mean(f1s)), 3))
        released_counts.append(int(np.mean(sizes)))

    text = series_table(
        "epsilon",
        EPSILONS,
        {"recovery F1": f1_means, "released itemsets": released_counts},
        title=(
            "DP itemset release on SuperCloud "
            f"(reference table: {len(reference)} itemsets)"
        ),
    )
    write_artifact("privacy_tradeoff.txt", text)
    print("\n" + text)

    # utility is monotone-ish in ε and near-perfect at trivial privacy
    assert f1_means[0] > 0.99
    assert f1_means[0] >= f1_means[-1]
    assert f1_means[-1] < 0.9  # strong privacy visibly costs utility
