"""Table VI — job failure rules from the SuperCloud trace.

Paper rows (shape targets):

* C1/C2: low GMem-util / low CPU-util jobs ≈ 2× more likely to fail, at
  *low* confidence (≈ 0.25) — failure is not cleanly predictable here
  ("more complex models such as neural networks will be needed");
* A2: ≈ 40 % of failed jobs ran very long before dying (Runtime = Bin4).
"""

from __future__ import annotations

from repro.core import mine_keyword_rules

from bench_util import keyword_table_artifact, rules_with


def test_table6_supercloud_failure(benchmark, all_results, all_itemsets, paper_config):
    db = all_results["SuperCloud"].database

    result = benchmark.pedantic(
        lambda: mine_keyword_rules(
            db, "Failed", paper_config, itemsets=all_itemsets["SuperCloud"]
        ),
        rounds=3,
        iterations=1,
    )

    keyword_table_artifact(
        result,
        "Table VI — job failure rules, SuperCloud trace",
        "table6_supercloud_failure.txt",
        max_cause=2,
        max_char=2,
    )

    # C1: low GMem util ⇒ failed — weak confidence, real lift
    c1 = rules_with(
        result.cause,
        antecedent_parts=["GMem Util = Bin1"],
        consequent_parts=["Failed"],
    )
    assert c1
    best = max(c1, key=lambda r: r.lift)
    assert best.confidence < 0.6, "failure must stay weakly predictable"
    assert best.lift > 1.5

    # A2: long-running failures
    a2 = rules_with(
        result.characteristic,
        antecedent_parts=["Failed"],
        consequent_parts=["Runtime = Bin4"],
    )
    assert a2
    assert max(r.confidence for r in a2) > 0.3  # paper: 0.41
