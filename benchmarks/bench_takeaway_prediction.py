"""Takeaway validation — rule-based prediction at the submission stage.

The paper's case-study takeaways make three falsifiable claims:

1. PAI underutilisation: "a prediction model can be used to identify jobs
   that tend to underutilize GPU cores at the job submission stage" —
   so a rule classifier over *submission-time* items must beat the base
   rate substantially.
2. PAI failure: "a simple rule-based or tree-based classifier will
   suffice for prediction of job failures" — same protocol, high
   precision.
3. SuperCloud failure: "more complex models such as neural networks will
   be needed" — the same simple classifier must do poorly there.

This bench runs the full protocol: mine on a 70 % train split, build the
CBA-style classifier, evaluate on the 30 % holdout.
"""

from __future__ import annotations

from repro.core import MiningConfig, generate_rules, mine_frequent_itemsets
from repro.predict import RuleClassifier, evaluate_predictions, split_database

from bench_util import write_artifact

#: features of a PAI job known before it runs (Sec. IV-B takeaway)
PAI_SUBMISSION_FEATURES = {
    "Freq User", "Moderate User", "Rare User",
    "Freq Group", "Moderate Group", "Rare Group",
    "GPU Request", "CPU Request", "Mem Request", "GPU Type",
    "Tensorflow", "PyTorch", "Other Framework", "Multiple Tasks",
}

#: SuperCloud submission-time features (no telemetry!)
SC_SUBMISSION_FEATURES = {
    "Freq User", "Moderate User", "Rare User", "New User",
}


def _evaluate(db, target, allowed, config, min_confidence):
    train, test = split_database(db, 0.7, seed=11)
    itemsets = mine_frequent_itemsets(train, config)
    rules = generate_rules(itemsets, min_lift=config.min_lift)
    clf = RuleClassifier.from_rules(
        rules, target, allowed_features=allowed, min_confidence=min_confidence
    )
    report = evaluate_predictions(clf.predict(test), clf.labels(test))
    return clf, report


def test_takeaway_prediction(benchmark, all_results, paper_config):
    pai_db = all_results["PAI"].database
    sc_db = all_results["SuperCloud"].database

    # timed step: the full train→classify→evaluate protocol on PAI failure
    clf_fail, pai_fail = benchmark.pedantic(
        lambda: _evaluate(pai_db, "Failed", PAI_SUBMISSION_FEATURES, paper_config, 0.6),
        rounds=2,
        iterations=1,
    )

    _, pai_idle = _evaluate(
        pai_db, "SM Util = 0%", PAI_SUBMISSION_FEATURES, paper_config, 0.6
    )
    _, sc_fail = _evaluate(
        sc_db, "Failed", SC_SUBMISSION_FEATURES, paper_config, 0.2
    )

    lines = [
        "Takeaway validation — rule classifier at the submission stage",
        "",
        f"PAI: predict SM Util = 0%   {pai_idle}",
        f"PAI: predict Failed         {pai_fail}  ({len(clf_fail)} rules)",
        f"SuperCloud: predict Failed  {sc_fail}",
        "",
        "claims: PAI precision >> base rate (simple classifier suffices);",
        "SuperCloud F1 low (complex models needed).",
    ]
    text = "\n".join(lines)
    write_artifact("takeaway_prediction.txt", text)
    print("\n" + text)

    # 1+2: PAI targets are predictable from submission metadata alone
    assert pai_idle.precision > 1.3 * pai_idle.base_rate
    assert pai_idle.recall > 0.3
    assert pai_fail.precision > 1.5 * pai_fail.base_rate
    assert pai_fail.recall > 0.3
    # 3: the same classifier fails to capture SuperCloud failures
    assert sc_fail.f1 < 0.5
    assert sc_fail.f1 < pai_fail.f1
