"""Condensed representations — closed/maximal itemset compression.

The streaming systems the paper cites (Sec. VI) mine *closed* itemsets to
keep the pattern table tractable.  This bench measures how much the
closed and maximal representations compress each trace's frequent-itemset
table at the paper's parameters, and verifies losslessness of the closed
form (every frequent support is recoverable).
"""

from __future__ import annotations

from repro.core import closed_itemsets, maximal_itemsets, support_of_from_closed

from bench_util import write_artifact


def test_condensed_patterns(benchmark, all_itemsets):
    closed = {}
    maximal = {}
    for name, fis in all_itemsets.items():
        closed[name] = closed_itemsets(fis)
        maximal[name] = maximal_itemsets(fis)

    benchmark.pedantic(
        lambda: closed_itemsets(all_itemsets["PAI"]), rounds=3, iterations=1
    )

    lines = [
        "Condensed pattern representations (min_support=0.05, maxlen=5)",
        "",
        f"{'trace':<12} {'frequent':>9} {'closed':>9} {'maximal':>9} "
        f"{'closed ratio':>13}",
    ]
    for name, fis in all_itemsets.items():
        n_f, n_c, n_m = len(fis), len(closed[name]), len(maximal[name])
        lines.append(
            f"{name:<12} {n_f:>9} {n_c:>9} {n_m:>9} {n_c / n_f:>12.1%}"
        )
    text = "\n".join(lines)
    write_artifact("condensed_patterns.txt", text)
    print("\n" + text)

    for name, fis in all_itemsets.items():
        assert len(maximal[name]) <= len(closed[name]) <= len(fis)
        assert len(closed[name]) < len(fis), f"no condensation on {name}"

    # losslessness spot-check on the largest table
    pai = all_itemsets["PAI"]
    pai_closed = closed[ "PAI"]
    sample = list(pai.counts.items())[:: max(1, len(pai) // 200)]
    for itemset, count in sample:
        assert support_of_from_closed(pai_closed, itemset) == count
