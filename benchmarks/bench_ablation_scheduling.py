"""Ablation — scheduling policy and failure injection (operational insights).

Two of the paper's operational observations are mechanisms, not just
correlations, and the simulator substrate can demonstrate them:

* **PHI1 takeaway** ("a job scheduler should consider the potential long
  execution time of multi-GPU jobs, especially for policies like
  shortest-jobs-first"): under SJF, long jobs' queue delays inflate
  relative to FCFS while short jobs win.
* **Table VI A2 mechanism** ("these errors are likely caused by node
  failures or exceeding allocated time limits"): with time limits and
  node MTBF enabled, injected failures concentrate at long runtimes —
  reproducing the failed ⇒ Runtime = Bin4 association mechanistically.
"""

from __future__ import annotations

import numpy as np

from repro.cluster import (
    ClusterSimulator,
    ClusterSpec,
    FailureModel,
    FCFSScheduler,
    JobRequest,
    NodeSpec,
    build_nodes,
)

from bench_util import write_artifact


def _workload(n: int, seed: int) -> list[JobRequest]:
    rng = np.random.default_rng(seed)
    jobs = []
    for i in range(n):
        long_job = rng.random() < 0.2
        jobs.append(
            JobRequest(
                job_id=i,
                user=f"u{int(rng.integers(0, 30))}",
                submit_time=float(rng.uniform(0, 30_000)),
                runtime=float(rng.lognormal(8.5, 0.4)) if long_job
                else float(rng.lognormal(5.5, 0.6)),
                n_gpus=int(rng.integers(1, 3)),
                n_cpus=4,
                mem_gb=16.0,
                gpu_type="V100",
            )
        )
    return jobs


def _mean_delay(placements, predicate):
    delays = [
        p.start_time - p.request.submit_time
        for p in placements
        if predicate(p.request)
    ]
    return float(np.mean(delays)) if delays else 0.0


def test_ablation_scheduling_policy(benchmark):
    cluster = ClusterSpec.of((NodeSpec("n", "V100", 4, 64, 256), 3))
    jobs = _workload(800, seed=21)

    def run(policy):
        return FCFSScheduler(build_nodes(cluster), policy=policy).run(
            [  # fresh copies: the scheduler consumes mutable requests
                JobRequest(
                    job_id=j.job_id, user=j.user, submit_time=j.submit_time,
                    runtime=j.runtime, n_gpus=j.n_gpus, n_cpus=j.n_cpus,
                    mem_gb=j.mem_gb, gpu_type=j.gpu_type,
                )
                for j in jobs
            ]
        )[0]

    fcfs = run("fcfs")
    sjf = benchmark.pedantic(lambda: run("sjf"), rounds=3, iterations=1)

    is_long = lambda r: r.runtime > 2000  # noqa: E731
    rows = {
        "short jobs, FCFS": _mean_delay(fcfs, lambda r: not is_long(r)),
        "short jobs, SJF": _mean_delay(sjf, lambda r: not is_long(r)),
        "long jobs, FCFS": _mean_delay(fcfs, is_long),
        "long jobs, SJF": _mean_delay(sjf, is_long),
    }
    lines = ["Scheduling-policy ablation — mean queue delay (s)", ""]
    lines += [f"{k:<20} {v:10.1f}" for k, v in rows.items()]
    text = "\n".join(lines)
    write_artifact("ablation_scheduling.txt", text)
    print("\n" + text)

    assert rows["short jobs, SJF"] < rows["short jobs, FCFS"]
    # SJF shifts the waiting burden onto long jobs: their delay *relative
    # to short jobs* grows (under saturation absolute delays can shrink
    # for everyone because SJF drains the queue more efficiently)
    ratio_fcfs = rows["long jobs, FCFS"] / max(rows["short jobs, FCFS"], 1e-9)
    ratio_sjf = rows["long jobs, SJF"] / max(rows["short jobs, SJF"], 1e-9)
    assert ratio_sjf > 1.3 * ratio_fcfs


def test_failure_injection_mechanism(benchmark):
    cluster = ClusterSpec.of((NodeSpec("n", "V100", 8, 64, 256), 4))
    jobs = _workload(700, seed=22)
    limit = float(np.quantile([j.runtime for j in jobs], 0.93))

    sim = ClusterSimulator(
        cluster,
        seed=3,
        failures=FailureModel(
            time_limit_s=limit, node_mtbf_s=2e5, node_repair_s=600.0, seed=3
        ),
    )
    table = benchmark.pedantic(lambda: sim.run(jobs).to_table(), rounds=1, iterations=1)

    failed = np.asarray([s == "failed" for s in table["status"].to_list()])
    rt = table["runtime"].values
    q3 = np.quantile(rt, 0.75)
    share_late = float((rt[failed] >= q3).mean())
    lines = [
        "Failure-injection mechanism — where do injected failures land?",
        "",
        f"time limit            : {limit:.0f}s (93rd pct of planned runtimes)",
        f"node MTBF             : 2e5 s",
        f"failed jobs           : {int(failed.sum())} of {len(table)}",
        f"failures in Runtime Bin4: {share_late:.0%}",
        "",
        "matches Table VI A2: failures concentrate at long runtimes when",
        "caused by limits/node loss, not by early crashes.",
    ]
    text = "\n".join(lines)
    write_artifact("ablation_failure_injection.txt", text)
    print("\n" + text)

    assert failed.any()
    assert share_late > 0.6  # injected failures are overwhelmingly late
