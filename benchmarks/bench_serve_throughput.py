"""Serving throughput — the online rule-matching subsystem under load.

Measures the two layers of the serving hot path against a 1,000-rule
RuleBook:

* **index** — raw :class:`RuleIndex.match` calls, the per-request
  compute floor;
* **service** — full round trips through the asyncio TCP service
  (NDJSON protocol, micro-batching, bounded queue) driven by the
  trace-replay load generator on concurrent connections.

The acceptance bar is >= 5,000 served match requests/s against the
1k-rule book; the index floor is typically two orders of magnitude
above that, which is the point of the inverted index — the service's
ceiling is the event loop, not the matcher.

Sharded saturation mode (``python benchmarks/bench_serve_throughput.py
--shards 4``) is the scale-out half: it spawns a real worker cluster
(the same machinery as ``repro serve --shards``), saturates it with the
multi-process load generator, compares against a single-worker baseline
on the same book, and appends a trajectory point to ``BENCH_serve.json``
so the speedup's history is tracked across PRs.  A single asyncio
process tops out near 8.5k req/s; N full-replica shards scale toward
the ROADMAP's 100k+ req/s target *on hardware with cores to spare* —
the speedup floor is therefore hardware-aware (``--min-speedup auto``):
3x for ``--shards 4`` when enough cores exist, waived (with a printed
warning) on starved CI boxes where worker processes time-slice one core.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import random
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.core.items import Item, ItemVocabulary
from repro.core.rules import AssociationRule
from repro.serve import (
    RuleBook,
    RuleIndex,
    RuleService,
    replay_traffic,
    replay_traffic_multiprocess,
)

from bench_util import write_artifact

N_RULES = 1000
N_ITEMS = 120
N_JOBS = 20_000
CONCURRENCY = 8
MIN_SERVED_RPS = 5000.0


def build_rulebook(rng: random.Random) -> RuleBook:
    """A 1k-rule book over a trace-sized vocabulary (~120 items)."""
    vocabulary = ItemVocabulary(
        Item(f"Feature{k % 24}", f"Bin{k // 24}") for k in range(N_ITEMS)
    )
    rules = []
    seen = set()
    while len(rules) < N_RULES:
        # antecedents of 2-4 items, like mined rules under a max_len
        # bound — single-item antecedents would fire ~half the book on
        # every job, which no real trace rule set does
        size = rng.randint(3, 5)
        ids = rng.sample(range(N_ITEMS), size)
        cut = rng.randint(2, size - 1)
        antecedent = frozenset(ids[:cut])
        consequent = frozenset(ids[cut:])
        if (antecedent, consequent) in seen:
            continue
        seen.add((antecedent, consequent))
        rules.append(
            AssociationRule(
                antecedent=vocabulary.items_of(antecedent),
                consequent=vocabulary.items_of(consequent),
                antecedent_ids=antecedent,
                consequent_ids=consequent,
                support=rng.uniform(0.05, 0.5),
                confidence=rng.uniform(0.3, 1.0),
                lift=rng.uniform(1.5, 8.0),
                leverage=rng.uniform(0.0, 0.2),
                conviction=rng.uniform(1.0, 5.0),
            )
        )
    return RuleBook(rules=rules, trace="synthetic-bench")


def build_jobs(rng: random.Random, n_jobs: int) -> list[list[str]]:
    """Jobs shaped like preprocessed trace transactions (~10-16 items)."""
    items = [
        str(Item(f"Feature{k % 24}", f"Bin{k // 24}")) for k in range(N_ITEMS)
    ]
    return [
        rng.sample(items, rng.randint(10, 16)) for _ in range(n_jobs)
    ]


@pytest.fixture(scope="module")
def serving_fixture():
    rng = random.Random(20240)
    book = build_rulebook(rng)
    jobs = build_jobs(rng, N_JOBS)
    return book, jobs


def test_index_match_floor(benchmark, serving_fixture):
    """Raw index matching: the compute cost per request, no I/O."""
    book, jobs = serving_fixture
    index = RuleIndex.from_rulebook(book)
    sample = jobs[:2000]

    def match_all():
        return sum(len(index.match(job)) for job in sample)

    fired = benchmark.pedantic(match_all, rounds=3, iterations=1)
    per_job_us = benchmark.stats.stats.mean / len(sample) * 1e6
    write_artifact(
        "serve_index_floor.txt",
        f"RuleIndex.match over {len(book)} rules "
        f"({index.n_postings} postings): {per_job_us:.1f}us/job, "
        f"{fired / len(sample):.1f} rules fired/job\n",
    )
    assert fired > 0


def test_service_throughput(benchmark, serving_fixture):
    """Full service round trips must sustain >= 5k match requests/s."""
    book, jobs = serving_fixture
    stats_box = {}

    def run_load():
        async def scenario():
            service = RuleService.from_rulebook(
                book, max_queue=4096, max_batch=128
            )
            await service.start(port=0)
            try:
                stats = await replay_traffic(
                    "127.0.0.1",
                    service.port,
                    jobs,
                    concurrency=CONCURRENCY,
                )
            finally:
                await service.shutdown()
            return stats, service.metrics

        stats, metrics = asyncio.run(scenario())
        stats_box["stats"] = stats
        stats_box["metrics"] = metrics
        return stats

    stats = benchmark.pedantic(run_load, rounds=1, iterations=1)
    metrics = stats_box["metrics"]
    latency = metrics.latency
    report = "\n".join(
        [
            f"rule-serving throughput — {N_RULES} rules, {N_JOBS} jobs, "
            f"{CONCURRENCY} connections",
            f"  {stats.render()}",
            f"  batches: {metrics.n_batches} "
            f"({metrics.n_matched / max(metrics.n_batches, 1):.1f} req/batch)",
            f"  latency p50 {latency.quantile(0.5) * 1e3:.3f}ms  "
            f"p99 {latency.quantile(0.99) * 1e3:.3f}ms",
            "",
        ]
    )
    print("\n" + report)
    write_artifact("serve_throughput.txt", report)
    assert stats.n_requests == N_JOBS
    assert stats.n_failed == 0
    assert stats.requests_per_second >= MIN_SERVED_RPS, (
        f"served {stats.requests_per_second:,.0f} req/s, "
        f"need >= {MIN_SERVED_RPS:,.0f}"
    )


# -- sharded saturation mode (CLI) ---------------------------------------------
async def _measure_single(
    book_path: str, jobs, *, concurrency: int, client_procs: int
):
    """Baseline: one worker process, no router — PR 2's deployment."""
    from repro.serve.shard import ShardProcess

    worker = ShardProcess("single", book_path, max_queue=4096, max_batch=128)
    await worker.spawn()
    try:
        return await asyncio.to_thread(
            replay_traffic_multiprocess,
            "127.0.0.1",
            worker.port,
            jobs,
            processes=client_procs,
            concurrency=concurrency,
        )
    finally:
        await worker.stop()


async def _measure_cluster(
    book_path: str,
    jobs,
    *,
    shards: int,
    mode: str,
    lb_policy: str,
    concurrency: int,
    client_procs: int,
):
    from repro.serve.shard import ShardCluster

    cluster = ShardCluster(
        book_path,
        shards,
        mode=mode,
        lb_policy=lb_policy,
        max_queue=4096,
        max_batch=128,
    )
    await cluster.start()
    try:
        return await asyncio.to_thread(
            replay_traffic_multiprocess,
            cluster.host,
            cluster.port,
            jobs,
            processes=client_procs,
            concurrency=concurrency,
        )
    finally:
        await cluster.shutdown()


def _resolve_min_speedup(value: str, shards: int, client_procs: int) -> float:
    """Hardware-aware speedup floor.

    N shards can only beat one shard when the machine has cores for the
    workers *and* the load generator; on a starved box every process
    time-slices the same core and the router hop is pure overhead, so
    enforcing a floor there would only measure the CI machine.
    """
    if value != "auto":
        return float(value)
    cores = os.cpu_count() or 1
    needed = shards + 1 + client_procs  # workers + router/parent + load
    if cores >= needed:
        return 3.0 if shards >= 4 else max(1.0, shards * 0.75)
    print(
        f"note: {cores} core(s) for {needed} processes — shards "
        "time-slice instead of parallelise; speedup floor waived "
        "(pass --min-speedup to force one)",
        flush=True,
    )
    return 0.0


def _append_trajectory(output: Path, point: dict) -> None:
    """BENCH_serve.json keeps every recorded point, newest last."""
    if output.exists():
        doc = json.loads(output.read_text())
    else:
        doc = {
            "benchmark": "serve_throughput",
            "description": (
                "multi-shard serving saturation vs single-process "
                "baseline; one trajectory point per recorded run"
            ),
            "trajectory": [],
        }
    doc["trajectory"].append(point)
    output.write_text(json.dumps(doc, indent=2, sort_keys=True) + "\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="multi-shard rule-serving saturation benchmark"
    )
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument(
        "--mode", choices=["router", "reuseport"], default="router"
    )
    parser.add_argument("--lb-policy", default="round_robin")
    parser.add_argument("--n-jobs", type=int, default=N_JOBS)
    parser.add_argument("--concurrency", type=int, default=CONCURRENCY,
                        help="connections per load-generator process")
    parser.add_argument("--client-procs", type=int, default=None,
                        help="load-generator processes "
                             "(default: 2 with cores to spare, else 1)")
    parser.add_argument("--min-speedup", default="auto",
                        help="required sharded/single ratio; 'auto' waives "
                             "the floor on core-starved machines")
    parser.add_argument("--output", type=Path,
                        default=Path(__file__).resolve().parents[1]
                        / "BENCH_serve.json")
    args = parser.parse_args(argv)

    cores = os.cpu_count() or 1
    client_procs = args.client_procs
    if client_procs is None:
        client_procs = 2 if cores >= args.shards + 3 else 1
    min_speedup = _resolve_min_speedup(
        args.min_speedup, args.shards, client_procs
    )

    rng = random.Random(20240)
    book = build_rulebook(rng)
    jobs = build_jobs(rng, args.n_jobs)
    with tempfile.TemporaryDirectory(prefix="bench-serve-") as tmp:
        book_path = str(Path(tmp) / "bench.rulebook.jsonl")
        book.save(book_path)

        print(
            f"single-process baseline: {len(book)} rules, "
            f"{len(jobs)} jobs, {client_procs}x{args.concurrency} clients",
            flush=True,
        )
        single = asyncio.run(
            _measure_single(
                book_path,
                jobs,
                concurrency=args.concurrency,
                client_procs=client_procs,
            )
        )
        print(f"  {single.render()}", flush=True)

        print(
            f"sharded: {args.shards} workers, {args.mode} mode"
            + (f", {args.lb_policy}" if args.mode == "router" else ""),
            flush=True,
        )
        sharded = asyncio.run(
            _measure_cluster(
                book_path,
                jobs,
                shards=args.shards,
                mode=args.mode,
                lb_policy=args.lb_policy,
                concurrency=args.concurrency,
                client_procs=client_procs,
            )
        )
        print(f"  {sharded.render()}", flush=True)

    if single.n_failed or sharded.n_failed:
        print(
            f"FAIL: dropped requests (single={single.n_failed}, "
            f"sharded={sharded.n_failed})",
            flush=True,
        )
        return 1
    speedup = (
        sharded.requests_per_second / single.requests_per_second
        if single.requests_per_second
        else 0.0
    )
    print(
        f"speedup: {speedup:.2f}x "
        f"({sharded.requests_per_second:,.0f} vs "
        f"{single.requests_per_second:,.0f} req/s) on {cores} core(s)",
        flush=True,
    )

    point = {
        "date": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cpu_count": cores,
        "n_rules": len(book),
        "n_jobs": len(jobs),
        "shards": args.shards,
        "mode": args.mode,
        "lb_policy": args.lb_policy if args.mode == "router" else None,
        "concurrency": args.concurrency,
        "client_procs": client_procs,
        "single_rps": round(single.requests_per_second, 1),
        "sharded_rps": round(sharded.requests_per_second, 1),
        "speedup": round(speedup, 3),
        "min_speedup_enforced": min_speedup,
    }
    _append_trajectory(args.output, point)
    print(f"trajectory point appended to {args.output}", flush=True)

    if speedup < min_speedup:
        print(
            f"FAIL: speedup {speedup:.2f}x < required {min_speedup:.2f}x",
            flush=True,
        )
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
