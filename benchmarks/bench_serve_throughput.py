"""Serving throughput — the online rule-matching subsystem under load.

Measures the two layers of the serving hot path against a 1,000-rule
RuleBook:

* **index** — raw :class:`RuleIndex.match` calls, the per-request
  compute floor;
* **service** — full round trips through the asyncio TCP service
  (NDJSON protocol, micro-batching, bounded queue) driven by the
  trace-replay load generator on concurrent connections.

The acceptance bar is >= 5,000 served match requests/s against the
1k-rule book; the index floor is typically two orders of magnitude
above that, which is the point of the inverted index — the service's
ceiling is the event loop, not the matcher.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.core.items import Item, ItemVocabulary
from repro.core.rules import AssociationRule
from repro.serve import RuleBook, RuleIndex, RuleService, replay_traffic

from bench_util import write_artifact

N_RULES = 1000
N_ITEMS = 120
N_JOBS = 20_000
CONCURRENCY = 8
MIN_SERVED_RPS = 5000.0


def build_rulebook(rng: random.Random) -> RuleBook:
    """A 1k-rule book over a trace-sized vocabulary (~120 items)."""
    vocabulary = ItemVocabulary(
        Item(f"Feature{k % 24}", f"Bin{k // 24}") for k in range(N_ITEMS)
    )
    rules = []
    seen = set()
    while len(rules) < N_RULES:
        # antecedents of 2-4 items, like mined rules under a max_len
        # bound — single-item antecedents would fire ~half the book on
        # every job, which no real trace rule set does
        size = rng.randint(3, 5)
        ids = rng.sample(range(N_ITEMS), size)
        cut = rng.randint(2, size - 1)
        antecedent = frozenset(ids[:cut])
        consequent = frozenset(ids[cut:])
        if (antecedent, consequent) in seen:
            continue
        seen.add((antecedent, consequent))
        rules.append(
            AssociationRule(
                antecedent=vocabulary.items_of(antecedent),
                consequent=vocabulary.items_of(consequent),
                antecedent_ids=antecedent,
                consequent_ids=consequent,
                support=rng.uniform(0.05, 0.5),
                confidence=rng.uniform(0.3, 1.0),
                lift=rng.uniform(1.5, 8.0),
                leverage=rng.uniform(0.0, 0.2),
                conviction=rng.uniform(1.0, 5.0),
            )
        )
    return RuleBook(rules=rules, trace="synthetic-bench")


def build_jobs(rng: random.Random, n_jobs: int) -> list[list[str]]:
    """Jobs shaped like preprocessed trace transactions (~10-16 items)."""
    items = [
        str(Item(f"Feature{k % 24}", f"Bin{k // 24}")) for k in range(N_ITEMS)
    ]
    return [
        rng.sample(items, rng.randint(10, 16)) for _ in range(n_jobs)
    ]


@pytest.fixture(scope="module")
def serving_fixture():
    rng = random.Random(20240)
    book = build_rulebook(rng)
    jobs = build_jobs(rng, N_JOBS)
    return book, jobs


def test_index_match_floor(benchmark, serving_fixture):
    """Raw index matching: the compute cost per request, no I/O."""
    book, jobs = serving_fixture
    index = RuleIndex.from_rulebook(book)
    sample = jobs[:2000]

    def match_all():
        return sum(len(index.match(job)) for job in sample)

    fired = benchmark.pedantic(match_all, rounds=3, iterations=1)
    per_job_us = benchmark.stats.stats.mean / len(sample) * 1e6
    write_artifact(
        "serve_index_floor.txt",
        f"RuleIndex.match over {len(book)} rules "
        f"({index.n_postings} postings): {per_job_us:.1f}us/job, "
        f"{fired / len(sample):.1f} rules fired/job\n",
    )
    assert fired > 0


def test_service_throughput(benchmark, serving_fixture):
    """Full service round trips must sustain >= 5k match requests/s."""
    book, jobs = serving_fixture
    stats_box = {}

    def run_load():
        async def scenario():
            service = RuleService.from_rulebook(
                book, max_queue=4096, max_batch=128
            )
            await service.start(port=0)
            try:
                stats = await replay_traffic(
                    "127.0.0.1",
                    service.port,
                    jobs,
                    concurrency=CONCURRENCY,
                )
            finally:
                await service.shutdown()
            return stats, service.metrics

        stats, metrics = asyncio.run(scenario())
        stats_box["stats"] = stats
        stats_box["metrics"] = metrics
        return stats

    stats = benchmark.pedantic(run_load, rounds=1, iterations=1)
    metrics = stats_box["metrics"]
    latency = metrics.latency
    report = "\n".join(
        [
            f"rule-serving throughput — {N_RULES} rules, {N_JOBS} jobs, "
            f"{CONCURRENCY} connections",
            f"  {stats.render()}",
            f"  batches: {metrics.n_batches} "
            f"({metrics.n_matched / max(metrics.n_batches, 1):.1f} req/batch)",
            f"  latency p50 {latency.quantile(0.5) * 1e3:.3f}ms  "
            f"p99 {latency.quantile(0.99) * 1e3:.3f}ms",
            "",
        ]
    )
    print("\n" + report)
    write_artifact("serve_throughput.txt", report)
    assert stats.n_requests == N_JOBS
    assert stats.n_failed == 0
    assert stats.requests_per_second >= MIN_SERVED_RPS, (
        f"served {stats.requests_per_second:,.0f} req/s, "
        f"need >= {MIN_SERVED_RPS:,.0f}"
    )
