"""Fig. 1 — number of frequent itemsets at different minimum support.

The paper reports, at 5 % support with max length 5: PAI ≈ 232k,
SuperCloud ≈ 7.5k, Philly ≈ 1.2k itemsets, decreasing monotonically in
the threshold.  The synthetic traces have fewer features than production
PAI, so absolute counts are smaller; the shape targets are the monotone
decrease and the PAI ≫ SuperCloud ≥ Philly ordering.
"""

from __future__ import annotations

from repro.core import MiningConfig, mine_frequent_itemsets
from repro.viz import series_table

from bench_util import write_artifact

SUPPORTS = [0.025, 0.05, 0.075, 0.10, 0.15]


def _sweep(database):
    counts = []
    for s in SUPPORTS:
        fis = mine_frequent_itemsets(
            database, MiningConfig(min_support=s, max_len=5)
        )
        counts.append(len(fis))
    return counts


def test_fig1_support_sweep(benchmark, all_results):
    series = {name: _sweep(result.database) for name, result in all_results.items()}

    # timed step: one FP-Growth pass at the paper's 5 % threshold on PAI
    pai_db = all_results["PAI"].database
    benchmark.pedantic(
        lambda: mine_frequent_itemsets(pai_db, MiningConfig()),
        rounds=3,
        iterations=1,
    )

    text = series_table(
        "min_support",
        SUPPORTS,
        series,
        title="Fig. 1 — frequent itemsets vs minimum support (FP-Growth, maxlen 5)",
    )
    write_artifact("fig1_support_sweep.txt", text)
    print("\n" + text)

    for counts in series.values():
        assert counts == sorted(counts, reverse=True), "monotone decrease"
    at_5pct = {name: counts[1] for name, counts in series.items()}
    # paper ordering: PAI has by far the most itemsets
    assert at_5pct["PAI"] > at_5pct["SuperCloud"]
    assert at_5pct["PAI"] > at_5pct["Philly"]
    assert at_5pct["Philly"] > 100  # paper: >1.2k even for the smallest trace
