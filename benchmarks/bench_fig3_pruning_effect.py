"""Fig. 3 — rule scatter (support × lift) before vs after pruning, PAI.

The paper visualises every extracted GPU-underutilisation rule of the PAI
trace as a (support, lift) point and shows that Conditions 1–4 remove the
bulk of them — concentrated at low lift — leaving a human-readable set.
"""

from __future__ import annotations

import numpy as np

from repro.core import generate_rules, prune_rules
from repro.viz import pruning_scatter

from bench_util import write_artifact


def test_fig3_pruning_effect(benchmark, all_results, all_itemsets, paper_config):
    pai = all_results["PAI"]
    keyword = "SM Util = 0%"
    kw_id = pai.database.vocabulary.id_of(keyword)
    before = generate_rules(
        all_itemsets["PAI"], min_lift=paper_config.min_lift, keyword_ids=(kw_id,)
    )

    # timed step: the pruning pass itself
    after, report = benchmark.pedantic(
        lambda: prune_rules(before, keyword, paper_config.pruning),
        rounds=3,
        iterations=1,
    )

    panels = pruning_scatter(before, after)
    b, a = panels["before"], panels["after"]

    lines = [
        "Fig. 3 — PAI underutilization rules before/after pruning",
        "",
        f"rules before pruning : {len(b)}",
        f"rules after pruning  : {len(a)}",
        f"reduction            : {1 - len(a) / len(b):.1%}",
        str(report),
        "",
        f"lift  (before): median={np.median(b.lift):.2f}  p90={np.quantile(b.lift, 0.9):.2f}",
        f"lift  (after) : median={np.median(a.lift):.2f}  p90={np.quantile(a.lift, 0.9):.2f}",
        f"supp  (before): median={np.median(b.support):.3f}",
        f"supp  (after) : median={np.median(a.support):.3f}",
    ]
    text = "\n".join(lines)
    write_artifact("fig3_pruning_effect.txt", text)
    print("\n" + text)

    # shape: substantial reduction; the strongest rule family survives
    assert len(a) < 0.35 * len(b), "pruning must remove the bulk of rules"
    assert a.lift.max() >= 0.9 * b.lift.max()
    assert a.lift.min() >= 1.5  # the lift floor still holds after pruning
