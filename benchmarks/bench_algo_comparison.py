"""Algorithm comparison — FP-Growth vs Apriori vs Eclat (Sec. III-C).

The paper chooses FP-Growth over Apriori for "performance issues
(exponential runtime and memory requirements) … when the database is
large".  This bench times the three miners on the same preprocessed PAI
database at the paper's parameters and checks they return identical
results (the choice is about speed, never about the answer).
"""

from __future__ import annotations

import pytest

from repro.core import ALGORITHMS, MiningConfig, mine_frequent_itemsets
from repro.engine import MiningEngine

from bench_util import write_artifact

#: cache disabled so every timed round measures a real mining pass —
#: the engine cache would answer rounds 2+ in microseconds otherwise
UNCACHED = MiningEngine(backend="serial", cache=False)


@pytest.mark.parametrize("algorithm", sorted(ALGORITHMS))
def test_algo_runtime(benchmark, all_results, algorithm):
    db = all_results["PAI"].database
    config = MiningConfig(algorithm=algorithm)
    result = benchmark.pedantic(
        lambda: UNCACHED.mine(db, config), rounds=3, iterations=1
    )
    assert len(result) > 0


def test_naive_apriori_runtime(benchmark, all_results):
    """The textbook per-transaction-scan Apriori the paper argues against.

    Run on a subsample (it is the slow baseline by design) and checked
    for answer equality against FP-Growth on the same subsample.
    """
    from repro.core import apriori_naive, fpgrowth

    db = all_results["PAI"].database.sample(range(2000))
    result = benchmark.pedantic(
        lambda: apriori_naive(db, 0.05, 5), rounds=2, iterations=1
    )
    assert result == fpgrowth(db, 0.05, 5)


def test_algo_equivalence(benchmark, all_results):
    """All three miners agree bit-for-bit on every trace."""
    benchmark.pedantic(
        lambda: mine_frequent_itemsets(
            all_results["Philly"].database, MiningConfig(algorithm="eclat")
        ),
        rounds=2,
        iterations=1,
    )
    lines = ["Algorithm equivalence at min_support=0.05, max_len=5", ""]
    for name, result in all_results.items():
        counts = {}
        for algorithm in sorted(ALGORITHMS):
            fis = mine_frequent_itemsets(
                result.database, MiningConfig(algorithm=algorithm)
            )
            counts[algorithm] = fis.counts
        reference = counts["fpgrowth"]
        for algorithm, c in counts.items():
            assert c == reference, f"{algorithm} differs on {name}"
        lines.append(f"{name:<12} {len(reference):>7} itemsets — all algorithms agree")
    text = "\n".join(lines)
    write_artifact("algo_equivalence.txt", text)
    print("\n" + text)
