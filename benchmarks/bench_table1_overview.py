"""Table I — overview of the studied traces.

Regenerates the jobs/users/GPUs/duration overview for the synthetic
traces and records the paper's production-scale reference numbers next to
them.  The timed step is trace generation itself (the substrate's cost).
"""

from __future__ import annotations

import numpy as np

from repro.traces import PAIConfig, generate_pai, get_trace

from bench_util import write_artifact


def _overview_rows(all_tables):
    rows = []
    for name, table in all_tables.items():
        definition = get_trace(name.lower())
        users = len(set(table["user"].to_list()))
        rows.append(
            {
                "Name": definition.display_name,
                "Operator": definition.operator,
                "Jobs (synthetic)": len(table),
                "Users (synthetic)": users,
                "Jobs (paper)": definition.paper_jobs,
                "Users (paper)": definition.paper_users,
                "GPUs (paper)": definition.paper_gpus,
                "Time (paper)": definition.paper_duration,
            }
        )
    return rows


def test_table1_overview(benchmark, all_tables):
    rows = _overview_rows(all_tables)

    # timed step: generating a PAI slice through the full substrate
    benchmark.pedantic(
        lambda: generate_pai(PAIConfig(n_jobs=2000)), rounds=3, iterations=1
    )

    header = list(rows[0])
    widths = [max(len(str(r[h])) for r in rows + [dict(zip(header, header))]) for h in header]
    lines = ["Table I — trace overview (synthetic scale vs paper scale)", ""]
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    for r in rows:
        lines.append("  ".join(str(r[h]).ljust(w) for h, w in zip(header, widths)))
    text = "\n".join(lines)
    write_artifact("table1_overview.txt", text)
    print("\n" + text)

    # shape checks: three traces, user-population ordering preserved
    assert len(rows) == 3
    by_name = {r["Name"]: r for r in rows}
    assert by_name["PAI"]["Users (synthetic)"] > by_name["SuperCloud"]["Users (synthetic)"] / 2
