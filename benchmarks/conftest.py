"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper (see
DESIGN.md §4).  Traces are generated once per session at a reproducible
scale; each bench times its compute step with pytest-benchmark and writes
the regenerated artefact under ``benchmarks/output/`` so the numbers can
be inspected and diffed against EXPERIMENTS.md.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.core import MiningConfig
from repro.engine import MiningEngine
from repro.traces import (
    PAIConfig,
    PhillyConfig,
    SuperCloudConfig,
    generate_pai,
    generate_philly,
    generate_supercloud,
    pai_preprocessor,
    philly_preprocessor,
    supercloud_preprocessor,
)

#: benchmark scale — large enough that every paper association clears the
#: 5 % support floor comfortably, small enough to run in seconds
BENCH_N = {"pai": 12_000, "supercloud": 10_000, "philly": 10_000}

OUTPUT_DIR = Path(__file__).parent / "output"


@pytest.fixture(scope="session")
def output_dir() -> Path:
    OUTPUT_DIR.mkdir(exist_ok=True)
    return OUTPUT_DIR


@pytest.fixture(scope="session")
def pai_table():
    return generate_pai(PAIConfig(n_jobs=BENCH_N["pai"]))


@pytest.fixture(scope="session")
def supercloud_table():
    return generate_supercloud(SuperCloudConfig(n_jobs=BENCH_N["supercloud"]))


@pytest.fixture(scope="session")
def philly_table():
    return generate_philly(PhillyConfig(n_jobs=BENCH_N["philly"]))


@pytest.fixture(scope="session")
def all_tables(pai_table, supercloud_table, philly_table):
    return {"PAI": pai_table, "SuperCloud": supercloud_table, "Philly": philly_table}


@pytest.fixture(scope="session")
def pai_result(pai_table):
    return pai_preprocessor().run(pai_table)


@pytest.fixture(scope="session")
def supercloud_result(supercloud_table):
    return supercloud_preprocessor().run(supercloud_table)


@pytest.fixture(scope="session")
def philly_result(philly_table):
    return philly_preprocessor().run(philly_table)


@pytest.fixture(scope="session")
def all_results(pai_result, supercloud_result, philly_result):
    return {
        "PAI": pai_result,
        "SuperCloud": supercloud_result,
        "Philly": philly_result,
    }


@pytest.fixture(scope="session")
def paper_config():
    return MiningConfig()


@pytest.fixture(scope="session")
def engine():
    """Session-wide mining engine with a shared itemset cache."""
    return MiningEngine(backend="auto")


@pytest.fixture(scope="session")
def all_itemsets(all_results, paper_config, engine):
    return {
        name: engine.mine(result.database, paper_config)
        for name, result in all_results.items()
    }
