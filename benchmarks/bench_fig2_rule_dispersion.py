"""Fig. 2 — box plot of confidence and lift of rules across traces.

The paper's point: rule-metric distributions differ enough across the
three clusters that rules must be read per system, not compared across
systems ("it is not appropriate to compare similar rules from different
traces quantitatively").  We regenerate the GPU-underutilisation rule
sets and the box statistics of their confidence and lift.
"""

from __future__ import annotations

from repro.core import mine_keyword_rules
from repro.viz import box_chart, box_stats

from bench_util import write_artifact


def _underutil_rules(all_results, all_itemsets, paper_config):
    out = {}
    for name, result in all_results.items():
        ks = mine_keyword_rules(
            result.database,
            "SM Util = 0%",
            paper_config,
            itemsets=all_itemsets[name],
        )
        out[name] = list(ks.all_rules)
    return out


def test_fig2_rule_dispersion(benchmark, all_results, all_itemsets, paper_config):
    rules = _underutil_rules(all_results, all_itemsets, paper_config)

    sc_db = all_results["SuperCloud"].database
    benchmark.pedantic(
        lambda: mine_keyword_rules(
            sc_db, "SM Util = 0%", paper_config, itemsets=all_itemsets["SuperCloud"]
        ),
        rounds=3,
        iterations=1,
    )

    conf_stats = {n: box_stats([r.confidence for r in rs]) for n, rs in rules.items()}
    lift_stats = {n: box_stats([r.lift for r in rs]) for n, rs in rules.items()}
    text = "\n\n".join(
        [
            box_chart(conf_stats, title="Fig. 2a — confidence of underutilization rules"),
            box_chart(lift_stats, title="Fig. 2b — lift of underutilization rules"),
        ]
    )
    write_artifact("fig2_rule_dispersion.txt", text)
    print("\n" + text)

    # shape: every trace yields rules; distributions differ across traces
    for name, rs in rules.items():
        assert rs, f"no underutilization rules for {name}"
    medians = {n: s.median for n, s in lift_stats.items()}
    assert len({round(m, 1) for m in medians.values()}) > 1, (
        "lift distributions should differ across traces"
    )
    # all kept rules clear the paper's lift floor
    for rs in rules.values():
        assert min(r.lift for r in rs) >= 1.5
