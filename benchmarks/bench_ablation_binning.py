"""Ablation — equal-frequency vs equal-width binning (Sec. III-E).

The paper justifies equal-frequency binning: "we also tried equal-width
binning … this method does not work well because some features such as
runtime have long tails, thus bins at higher values tend to be empty."
This bench encodes the SuperCloud trace both ways and measures the
occupancy skew of the runtime bins plus the number of frequent itemsets
each scheme yields.
"""

from __future__ import annotations

import numpy as np

from repro.core import Item, MiningConfig, mine_frequent_itemsets
from repro.preprocess import BinningSpec, Discretizer

from bench_util import write_artifact


def _bin_occupancy(values: np.ndarray, spec: BinningSpec) -> dict[str, float]:
    labels = Discretizer(spec).fit_transform(values)
    n = len(labels)
    out: dict[str, float] = {}
    for label in labels:
        out[label] = out.get(label, 0.0) + 1.0 / n
    return dict(sorted(out.items()))


def test_ablation_binning_scheme(benchmark, supercloud_table, supercloud_result):
    runtime = supercloud_table["runtime"].values

    benchmark.pedantic(
        lambda: Discretizer(BinningSpec()).fit_transform(runtime),
        rounds=3,
        iterations=1,
    )

    eq_freq = _bin_occupancy(runtime, BinningSpec(scheme="equal_frequency"))
    eq_width = _bin_occupancy(runtime, BinningSpec(scheme="equal_width"))

    lines = [
        "Binning ablation — SuperCloud runtime occupancy per bin",
        "",
        f"{'bin':<8} {'equal_frequency':>16} {'equal_width':>14}",
    ]
    for label in sorted(set(eq_freq) | set(eq_width)):
        lines.append(
            f"{label:<8} {eq_freq.get(label, 0.0):>16.3f} {eq_width.get(label, 0.0):>14.3f}"
        )

    # effect on mining: equal-width starves the upper bins of support
    db_freq = supercloud_result.database
    n_freq = len(mine_frequent_itemsets(db_freq, MiningConfig()))
    lines += ["", f"frequent itemsets (equal-frequency pipeline): {n_freq}"]

    text = "\n".join(lines)
    write_artifact("ablation_binning.txt", text)
    print("\n" + text)

    # the paper's argument, quantified: long-tailed runtime crowds the
    # lowest equal-width bin and leaves the top bins nearly empty
    assert eq_width["Bin1"] > 0.9
    assert eq_width.get("Bin3", 0.0) + eq_width.get("Bin4", 0.0) < 0.05
    # equal frequency stays balanced
    assert max(eq_freq.values()) < 0.35
