"""Parallel mining — engine backends over SON partitioning (Sec. VI path).

Times the engine's partitioned backends against the serial backend on
the PAI database and verifies bit-exact equivalence (a backend changes
the execution plan, not the answer).  Caching is disabled so every
round measures a real mining pass.
"""

from __future__ import annotations

import pytest

from repro.core import MiningConfig
from repro.engine import MiningEngine

from bench_util import write_artifact

PAPER = MiningConfig()


@pytest.mark.parametrize(
    "backend,n_partitions,n_workers",
    [("process", 1, 1), ("process", 4, 1), ("process", 4, 4), ("threaded", 4, 4)],
)
def test_backend_runtime(benchmark, all_results, backend, n_partitions, n_workers):
    db = all_results["PAI"].database
    engine = MiningEngine(
        backend=backend, n_workers=n_workers, n_partitions=n_partitions, cache=False
    )
    result = benchmark.pedantic(
        lambda: engine.mine(db, PAPER),
        rounds=3,
        iterations=1,
    )
    assert len(result) > 0


def test_parallel_rulegen_equivalence(benchmark, all_itemsets):
    """Sharded rule generation is identical to the serial pass."""
    from repro.core import generate_rules
    from repro.parallel import parallel_generate_rules

    pai = all_itemsets["PAI"]
    serial = generate_rules(pai, min_lift=1.5)
    parallel = benchmark.pedantic(
        lambda: parallel_generate_rules(pai, min_lift=1.5, n_workers=4, n_chunks=8),
        rounds=2,
        iterations=1,
    )
    assert [str(r) for r in serial] == [str(r) for r in parallel]


def test_son_equivalence(benchmark, all_results, all_itemsets):
    engine = MiningEngine(backend="process", n_partitions=4, cache=False)
    benchmark.pedantic(
        lambda: engine.mine(all_results["Philly"].database, PAPER),
        rounds=2,
        iterations=1,
    )
    lines = ["SON partitioned mining vs FP-Growth (min_support=0.05, maxlen=5)", ""]
    for name, result in all_results.items():
        son = engine.mine(result.database, PAPER)
        reference = all_itemsets[name]
        assert son.counts == reference.counts, f"SON differs on {name}"
        lines.append(f"{name:<12} {len(son):>7} itemsets — identical to FP-Growth")
    text = "\n".join(lines)
    write_artifact("parallel_son.txt", text)
    print("\n" + text)
