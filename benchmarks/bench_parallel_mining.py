"""Parallel mining — SON partitioned FP-Growth (Sec. VI scaling path).

Times the two-phase SON miner against single-machine FP-Growth on the
PAI database and verifies bit-exact equivalence (SON changes the
execution plan, not the answer).
"""

from __future__ import annotations

import pytest

from repro.core import MiningConfig, mine_frequent_itemsets
from repro.parallel import son_mine

from bench_util import write_artifact


@pytest.mark.parametrize("n_partitions,n_workers", [(1, 1), (4, 1), (4, 4)])
def test_son_runtime(benchmark, all_results, n_partitions, n_workers):
    db = all_results["PAI"].database
    result = benchmark.pedantic(
        lambda: son_mine(
            db, 0.05, max_len=5, n_partitions=n_partitions, n_workers=n_workers
        ),
        rounds=3,
        iterations=1,
    )
    assert len(result) > 0


def test_parallel_rulegen_equivalence(benchmark, all_itemsets):
    """Sharded rule generation is identical to the serial pass."""
    from repro.core import generate_rules
    from repro.parallel import parallel_generate_rules

    pai = all_itemsets["PAI"]
    serial = generate_rules(pai, min_lift=1.5)
    parallel = benchmark.pedantic(
        lambda: parallel_generate_rules(pai, min_lift=1.5, n_workers=4, n_chunks=8),
        rounds=2,
        iterations=1,
    )
    assert [str(r) for r in serial] == [str(r) for r in parallel]


def test_son_equivalence(benchmark, all_results, all_itemsets):
    benchmark.pedantic(
        lambda: son_mine(
            all_results["Philly"].database, 0.05, max_len=5, n_partitions=4
        ),
        rounds=2,
        iterations=1,
    )
    lines = ["SON partitioned mining vs FP-Growth (min_support=0.05, maxlen=5)", ""]
    for name, result in all_results.items():
        son = son_mine(result.database, 0.05, max_len=5, n_partitions=4)
        reference = all_itemsets[name]
        assert son.counts == reference.counts, f"SON differs on {name}"
        lines.append(f"{name:<12} {len(son):>7} itemsets — identical to FP-Growth")
    text = "\n".join(lines)
    write_artifact("parallel_son.txt", text)
    print("\n" + text)
