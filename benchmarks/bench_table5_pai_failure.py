"""Table V — job failure rules from the PAI trace.

Paper rows (shape targets):

* C1–C3: frequent group / frequent user submissions failing at very high
  confidence (0.91–0.95) — the "one heavy user" phenomenon;
* C2/C4: GMem Used = 0 GB at failure (dies before the model loads);
* C6: low memory used ⇒ failed;
* A2: failed jobs share the underutilisation profile (SM Util = 0 % in
  the consequent) — "addressing one issue will alleviate another".
"""

from __future__ import annotations

from repro.core import mine_keyword_rules

from bench_util import keyword_table_artifact, rules_with


def test_table5_pai_failure(benchmark, all_results, all_itemsets, paper_config):
    db = all_results["PAI"].database

    result = benchmark.pedantic(
        lambda: mine_keyword_rules(
            db, "Failed", paper_config, itemsets=all_itemsets["PAI"]
        ),
        rounds=3,
        iterations=1,
    )

    keyword_table_artifact(
        result,
        "Table V — job failure rules, PAI trace",
        "table5_pai_failure.txt",
        max_cause=6,
        max_char=2,
    )

    cause, char = result.cause, result.characteristic
    # C1/C3 family: frequent-group jobs failing with high confidence
    freq_group = rules_with(cause, antecedent_parts=["Freq Group"])
    assert freq_group and max(r.confidence for r in freq_group) > 0.7
    # C2/C4 family: zero GPU memory used at failure
    assert rules_with(result.all_rules, antecedent_parts=["GMem Used = 0GB"])
    # A2: failure ↔ underutilisation link
    assert rules_with(
        char, antecedent_parts=["Failed"], consequent_parts=["SM Util = 0%"]
    )
    # simple high-confidence rules exist → "a simple rule-based classifier
    # will suffice" takeaway
    assert max(r.confidence for r in cause) > 0.8
