"""Table III — GPU underutilization rules from the SuperCloud trace.

Paper rows (shape targets):

* C1/C2: low GMem util (+variance) and low power ⇒ SM Util = 0 %,
  with high confidence and the highest lifts of the three traces;
* C3: new users associated with idle GPUs;
* A1 vs A2: always-idle jobs also have low GPU memory *used*, while
  bursty (inference) jobs hold memory — the low-memory characteristic
  drops out of the average-only rule.
"""

from __future__ import annotations

from repro.core import mine_keyword_rules

from bench_util import keyword_table_artifact, rules_with


def test_table3_supercloud_underutilization(
    benchmark, all_results, all_itemsets, paper_config
):
    db = all_results["SuperCloud"].database

    result = benchmark.pedantic(
        lambda: mine_keyword_rules(
            db, "SM Util = 0%", paper_config, itemsets=all_itemsets["SuperCloud"]
        ),
        rounds=3,
        iterations=1,
    )

    keyword_table_artifact(
        result,
        "Table III — GPU underutilization rules, SuperCloud trace",
        "table3_supercloud_underutil.txt",
        max_cause=4,
        max_char=2,
    )

    cause, char = result.cause, result.characteristic
    # C1 family: low GPU-memory utilisation as the cause signal
    gmem = rules_with(cause, antecedent_parts=["GMem Util = Bin1"])
    assert gmem and max(r.confidence for r in gmem) > 0.5
    # low-power signal (the metric only SuperCloud records)
    assert rules_with(result.all_rules, antecedent_parts=["GPU Power = Bin1"])
    # A1 family: idle ⇒ low GMem utilisation, strong lift
    a1 = rules_with(
        char,
        antecedent_parts=["SM Util = 0%"],
        consequent_parts=["GMem Util = Bin1"],
    )
    assert a1 and max(r.lift for r in a1) > 3.0  # paper: 4.3–10.6
