"""Table VIII — interesting trace-specific rules.

Paper rows (shape targets):

* PAI1/PAI2: T4 requests queue in the bottom quartile, non-T4 in the top
  (capacity ratio 1 : 3.5) — emergent from the discrete-event scheduler;
* PAI3: RecSys models ⇒ T4 GPU + multiple tasks (conf ≈ 0.88);
* PAI4: low CPU util + top-quartile SM util ⇒ NLP model (conf ≈ 0.99);
* CIR1: SuperCloud new users ⇒ job killed (lift ≈ 1.75);
* PHI1: Philly multi-GPU ⇒ very long runtime (lift ≈ 2.01).
"""

from __future__ import annotations

from repro.analysis import InterpretableAnalysis, misc_study
from repro.core import mine_keyword_rules
from repro.traces import get_trace
from repro.traces.synthetic.pai import pai_preprocessor

from bench_util import rules_with, write_artifact


def test_table8_misc_rules(
    benchmark, pai_table, all_results, all_itemsets, paper_config
):
    # --- PAI queueing rules (standard preprocessing, shared itemsets) ----
    pai_db = all_results["PAI"].database
    t4 = mine_keyword_rules(
        pai_db, "GPU Type = T4", paper_config, itemsets=all_itemsets["PAI"]
    )
    non_t4 = mine_keyword_rules(
        pai_db, "GPU Type = None T4", paper_config, itemsets=all_itemsets["PAI"]
    )

    # --- PAI model rules on the labelled subset (timed step) -------------
    labelled = pai_table.dropna(["model_name"])
    workflow = InterpretableAnalysis(pai_preprocessor(include_model=True), paper_config)
    model_result = benchmark.pedantic(
        lambda: workflow.run(
            labelled, {"recsys": "Model = RecSys", "nlp": "Model = NLP"}
        ),
        rounds=2,
        iterations=1,
    )

    # --- SuperCloud kills & Philly multi-GPU -----------------------------
    sc_killed = mine_keyword_rules(
        all_results["SuperCloud"].database,
        "Job Killed",
        paper_config,
        itemsets=all_itemsets["SuperCloud"],
    )
    ph_multi = mine_keyword_rules(
        all_results["Philly"].database,
        "Multi-GPU",
        paper_config,
        itemsets=all_itemsets["Philly"],
    )

    checks = []

    # PAI1: T4 ⇒ short queue
    pai1 = rules_with(
        t4.characteristic,
        antecedent_parts=["GPU Type = T4"],
        consequent_parts=["Queue = Bin1"],
    )
    checks.append(("PAI1: T4 => Queue Bin1", pai1))

    # PAI2: non-T4 ⇒ long queue
    pai2 = rules_with(
        non_t4.characteristic,
        antecedent_parts=["GPU Type = None T4"],
        consequent_parts=["Queue = Bin4"],
    )
    checks.append(("PAI2: None T4 => Queue Bin4", pai2))

    # PAI3: RecSys ⇒ T4 + multiple tasks
    pai3 = rules_with(
        model_result["recsys"].characteristic,
        antecedent_parts=["Model = RecSys"],
        consequent_parts=["GPU Type = T4", "Multiple Tasks"],
    )
    checks.append(("PAI3: RecSys => T4 + Multiple Tasks", pai3))

    # PAI4: low CPU + top SM ⇒ NLP.  Condition 1 may prune the two-item
    # antecedent in favour of its single-item generalisations when those
    # carry the same lift, so accept either form of the signal.
    nlp_cause = model_result["nlp"].cause
    pai4 = rules_with(
        nlp_cause,
        antecedent_parts=["CPU Util = Bin1", "SM Util = Bin4"],
        consequent_parts=["Model = NLP"],
    ) or (
        rules_with(nlp_cause, ["CPU Util = Bin1"], ["Model = NLP"])
        + rules_with(nlp_cause, ["SM Util = Bin4"], ["Model = NLP"])
    )
    checks.append(("PAI4: low CPU + high SM => NLP", pai4))

    # CIR1: new users ⇒ killed
    cir1 = rules_with(
        sc_killed.cause,
        antecedent_parts=["New User"],
        consequent_parts=["Job Killed"],
    )
    checks.append(("CIR1: New User => Job Killed", cir1))

    # PHI1: multi-GPU ⇒ long runtime
    phi1 = rules_with(
        ph_multi.characteristic,
        antecedent_parts=["Multi-GPU"],
        consequent_parts=["Runtime = Bin4"],
    )
    checks.append(("PHI1: Multi-GPU => Runtime Bin4", phi1))

    lines = ["Table VIII — interesting trace-specific rules", ""]
    for label, hits in checks:
        if hits:
            best = max(hits, key=lambda r: r.lift)
            lines.append(
                f"{label:<40} supp={best.support:.2f} "
                f"conf={best.confidence:.2f} lift={best.lift:.2f}"
            )
        else:
            lines.append(f"{label:<40} NOT FOUND")
    text = "\n".join(lines)
    write_artifact("table8_misc_rules.txt", text)
    print("\n" + text)

    for label, hits in checks:
        assert hits, f"missing Table VIII rule family: {label}"
        assert max(r.lift for r in hits) > 1.5
