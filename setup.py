"""Legacy setup shim.

The offline environment lacks the ``wheel`` package, so PEP 660 editable
installs (which shell out to ``bdist_wheel``) fail.  Keeping a setup.py
lets ``pip install -e . --no-build-isolation`` take the legacy
``setup.py develop`` path, which only needs setuptools.
"""

from setuptools import setup

setup()
